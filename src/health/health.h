// Runtime self-healing: crash containment + per-site quarantine
// (DESIGN.md §11).
//
// PR 1's degradation ladder runs once, at init; everything it validated
// can rot afterwards (paper P1–P5 share exactly this shape: a mechanism
// valid at arm time silently invalidated later). Production DBI engines
// survive because they contain faults and fall back per-site at runtime;
// this subsystem gives K23 the same property:
//
//  * a SIGSEGV/SIGILL/SIGBUS containment handler that recognizes faults
//    whose PC lies in K23-owned ranges — the patched sites themselves,
//    the VA-0 trampoline page, and any dispatch executing on behalf of a
//    rewritten site (tracked via the trampoline's active-frame TLS) — and
//    converts them into per-site quarantine instead of process death.
//    Quarantine = transactional restore of that one site's original
//    bytes (atomic 16-bit store + cpuid + membarrier SYNC_CORE, the PR 1
//    / promotion patch discipline) + demotion of its dispatch to the SUD
//    fallback. Faults whose PC is NOT K23-owned are re-raised to the
//    previously-installed disposition: the application's own crashes
//    must never be swallowed.
//  * a per-site health ledger — lock-free, cache-line-sharded like the
//    promotion hit table — tracking fault counts, quarantine state and
//    re-promotion eligibility with jittered exponential backoff. A site
//    that faults max_faults times within the hysteresis window is
//    permanently demoted; each successive quarantine doubles the backoff
//    so a flapping site cannot thrash the patcher.
//  * a watchdog that detects a wedged SUD dispatch (a SIGSYS handler
//    that entered but never exited past a deadline) and re-descends the
//    ladder for the whole process: every rewritten site is restored and
//    the SUD selector opened, trading interposition for liveness, with
//    an extended DegradationReport flushed through the black-box.
//
// The healthy-site fast path costs the dispatcher at most ONE relaxed
// load (the trampoline's probe-function pointer); the ledger is only
// consulted from fault handlers and the SUD trap path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "k23/degradation.h"

namespace k23 {

struct HealthConfig {
  bool enabled = true;
  // Contained faults at one site before it is permanently demoted to the
  // SUD path (within the hysteresis window; see fault_window_ms).
  uint32_t max_faults = 3;
  // Base re-promotion backoff after the first quarantine; doubles per
  // fault and carries ±25% jitter so a fleet of workers quarantining the
  // same site does not re-patch in lockstep.
  uint64_t backoff_ms = 50;
  // Faults further apart than this window reset the per-site fault
  // count: an old, healed fault must not push a later one to permanent
  // demotion.
  uint64_t fault_window_ms = 60000;
  // SUD-dispatch watchdog deadline; 0 disables the watchdog thread.
  uint64_t watchdog_ms = 0;

  // K23_HEAL, K23_HEAL_MAX_FAULTS, K23_HEAL_BACKOFF_MS, K23_HEAL_WATCHDOG_MS.
  static HealthConfig from_env();
};

// Per-site state machine (DESIGN.md §11):
//   healthy -> quarantined -> (backoff) -> repromoting -> healthy
//                          -> demoted (terminal, after max_faults)
enum class SiteHealth : uint8_t {
  kHealthy = 0,
  kQuarantined,   // original bytes restored, dispatch via SUD
  kRepromoting,   // one thread re-patching after backoff expiry
  kDemoted,       // permanently on the SUD path
};

const char* site_health_name(SiteHealth state);

struct SiteHealthInfo {
  uint64_t site = 0;
  SiteHealth state = SiteHealth::kHealthy;
  uint32_t faults = 0;       // contained faults (within window semantics)
  uint32_t quarantines = 0;  // lifetime quarantine count
  uint64_t retry_at_ms = 0;  // monotonic re-promotion eligibility
};

struct HealthStats {
  uint64_t registered = 0;         // sites in the ledger
  uint64_t contained = 0;          // faults converted to quarantine
  uint64_t quarantined_now = 0;    // sites currently off the fast path
  uint64_t repromotions = 0;       // successful re-patches
  uint64_t demoted = 0;            // permanently demoted sites
  uint64_t watchdog_descents = 0;  // whole-process re-descents
};

class Health {
 public:
  // Installs the containment handlers (saving the previous dispositions
  // for chaining), registers membarrier SYNC_CORE intent, arms the
  // trampoline dispatch probe (fault injection / black-box tracing) and,
  // when config.watchdog_ms > 0 and SUD is armed, starts the watchdog
  // thread. Normal context only.
  static Status init(const HealthConfig& config);
  static void shutdown();  // restore handlers, stop watchdog, clear ledger
  static bool active();

  // Adds a rewritten site to the ledger (startup rewrite and online
  // promotion both register here). Lock-free insert; silently drops when
  // the table is full — an unregistered site simply has no self-healing.
  static void register_site(uint64_t site, bool was_sysenter);

  // SUD pre-dispatch notification. Returns false when the ledger owns
  // this site (quarantined / demoted / mid-transition) — the caller must
  // then skip promotion counting for it; the syscall itself still
  // dispatches normally either way. A quarantined site whose backoff
  // expired is re-promoted from here (async-signal-safe patch path).
  static bool note_sud_hit(uint64_t site);

  // Promotion guard: false when the ledger forbids (re)patching `site`
  // (quarantined or permanently demoted).
  static bool site_patchable(uint64_t site);

  static SiteHealth site_state(uint64_t site);
  static HealthStats stats();
  static std::vector<SiteHealthInfo> snapshot();

  // Stashes the init-time DegradationReport, preformatted into a static
  // buffer (no malloc later), so fault-path black-box flushes can attach
  // it. Normal context.
  static void note_report(const DegradationReport& report);

  // Appends one event per quarantined/demoted site (the per-site
  // quarantine history) to an operator-facing report.
  static void append_events(DegradationReport* report);

  // One watchdog evaluation at `now_ms` (exposed so tests drive the
  // deadline logic without a live thread + wedged dispatcher). Returns
  // true when a wedged SUD dispatch was detected and a whole-process
  // descent was triggered.
  static bool watchdog_check(uint64_t now_ms);

  // Whole-process ladder re-descent: restores every registered healthy
  // site's original bytes, opens the SUD selector (liveness over
  // interposition), emits kDescend + an extended DegradationReport via
  // the black-box. Returns the number of sites restored.
  static size_t descend(const char* why);

  // Fault-containment entry, exposed for tests that synthesize faults.
  // Returns true when the fault was contained (site quarantined).
  static bool contain_fault_at(uint64_t pc, int signal);
};

}  // namespace k23
