#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // REG_RIP and friends in <ucontext.h>
#endif

#include "health/health.h"

#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "arch/raw_syscall.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/retry.h"
#include "common/strings.h"
#include "faultinject/faultinject.h"
#include "health/blackbox.h"
#include "interpose/dispatch.h"
#include "interpose/internal.h"
#include "rewrite/patcher.h"
#include "sud/sud_session.h"
#include "trampoline/trampoline.h"

#ifndef MEMBARRIER_CMD_PRIVATE_EXPEDITED_SYNC_CORE
#define MEMBARRIER_CMD_PRIVATE_EXPEDITED_SYNC_CORE (1 << 5)
#endif
#ifndef MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED_SYNC_CORE
#define MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED_SYNC_CORE (1 << 6)
#endif

namespace k23 {
namespace {

// ---------------------------------------------------------------------------
// Per-site ledger. Same shape as the promotion hit table: cache-line-
// sharded static slots, open addressing with a bounded probe run, every
// field atomic so the fault handler and the SIGSYS path can touch a slot
// concurrently with TSan-visible ordering.
// ---------------------------------------------------------------------------

struct alignas(64) HealthSlot {
  std::atomic<uint64_t> site{0};  // 0 = free
  std::atomic<uint32_t> state{0};  // SiteHealth values
  std::atomic<uint32_t> faults{0};
  std::atomic<uint32_t> quarantines{0};
  std::atomic<uint64_t> retry_at_ms{0};
  std::atomic<uint64_t> last_fault_ms{0};
  std::atomic<bool> was_sysenter{false};
};

constexpr size_t kHealthSlots = 512;  // power of two (mask probing)
constexpr size_t kMaxProbes = 32;     // bound handler latency when full

HealthSlot g_ledger[kHealthSlots];

std::atomic<bool> g_active{false};
HealthConfig g_config;
std::atomic<bool> g_membarrier_sync_core{false};

std::atomic<uint64_t> g_registered{0};
std::atomic<uint64_t> g_contained{0};
std::atomic<uint64_t> g_repromotions{0};
std::atomic<uint64_t> g_demoted{0};
std::atomic<uint64_t> g_watchdog_descents{0};

// Init-time degradation report, preformatted so fault-path flushes can
// attach it without allocating.
char g_report_buf[8192];
size_t g_report_len = 0;

// Previous dispositions for SIGSEGV/SIGILL/SIGBUS, restored verbatim
// when a fault turns out not to be ours (chaining) and at shutdown.
constexpr int kFaultSignals[] = {SIGSEGV, SIGILL, SIGBUS};
constexpr size_t kFaultSignalCount = 3;
struct sigaction g_prev_actions[kFaultSignalCount];
bool g_handlers_installed = false;

// Watchdog thread.
std::thread g_watchdog_thread;
std::atomic<bool> g_watchdog_stop{false};

// Re-entry guard: a fault inside the containment handler itself must
// fall through to default death, not recurse. initial-exec TLS so the
// handler can read it without __tls_get_addr.
__attribute__((tls_model("initial-exec"))) thread_local bool t_in_fault = false;

size_t slot_hash(uint64_t site) {
  return static_cast<size_t>((site * 0x9E3779B97F4A7C15ull) >> 33);
}

HealthSlot* find_slot(uint64_t site) {
  size_t idx = slot_hash(site) & (kHealthSlots - 1);
  for (size_t probe = 0; probe < kMaxProbes; ++probe) {
    HealthSlot& slot = g_ledger[idx];
    const uint64_t cur = slot.site.load(std::memory_order_acquire);
    if (cur == site) return &slot;
    if (cur == 0) return nullptr;  // insert-only table: empty ends the chain
    idx = (idx + 1) & (kHealthSlots - 1);
  }
  return nullptr;
}

uint32_t state_of(const HealthSlot& slot) {
  return slot.state.load(std::memory_order_acquire);
}

constexpr uint32_t kStHealthy =
    static_cast<uint32_t>(SiteHealth::kHealthy);
constexpr uint32_t kStQuarantined =
    static_cast<uint32_t>(SiteHealth::kQuarantined);
constexpr uint32_t kStRepromoting =
    static_cast<uint32_t>(SiteHealth::kRepromoting);
constexpr uint32_t kStDemoted =
    static_cast<uint32_t>(SiteHealth::kDemoted);

void sync_core_all_cpus() {
  if (g_membarrier_sync_core.load(std::memory_order_relaxed)) {
    raw_syscall(SYS_membarrier, MEMBARRIER_CMD_PRIVATE_EXPEDITED_SYNC_CORE, 0);
  }
}

// Jittered exponential backoff interval for re-promotion. Stateless
// (hash of site and time) because the fault path cannot share a PRNG:
// base * 2^(faults-1), capped, then +-25% so sibling processes that
// quarantined the same library site do not re-patch in lockstep.
uint64_t backoff_interval_ms(uint64_t site, uint64_t now, uint32_t faults) {
  uint32_t shift = faults > 1 ? faults - 1 : 0;
  if (shift > 16) shift = 16;
  uint64_t base = g_config.backoff_ms << shift;
  uint64_t h = site ^ (now * 0x9E3779B97F4A7C15ull);
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  const uint64_t range = base / 4;
  if (range != 0) base = base - range + h % (2 * range + 1);
  return base;
}

// The quarantine transaction: claim the slot, restore the site's
// original bytes with the promotion patch discipline, schedule (or
// permanently refuse) re-promotion. Async-signal-safe; callable from
// the containment handler and from tests via contain_fault_at().
bool quarantine_site(HealthSlot& slot, uint64_t site, uint64_t pc, int sig) {
  // Drain the write-batching rings before touching the site: quarantine
  // reroutes or demotes dispatch for this site, and buffered payloads
  // must reach the kernel while the flush path is still known-good. The
  // drain skips (never waits on) a flush lock the crashed frame might
  // hold, so containment cannot deadlock on its own victim.
  if (const internal::BatchHookFn drain = internal::batch_drain();
      drain != nullptr) {
    drain();
  }
  for (;;) {
    uint32_t cur = state_of(slot);
    if (cur == kStQuarantined || cur == kStDemoted) {
      // Another thread already restored the bytes; this fault raced the
      // transition and re-executing the (now original) site is correct.
      return true;
    }
    if (slot.state.compare_exchange_weak(cur, kStQuarantined,
                                         std::memory_order_acq_rel)) {
      break;
    }
  }

  const uint64_t now = monotonic_ms();
  const uint64_t last =
      slot.last_fault_ms.exchange(now, std::memory_order_relaxed);
  uint32_t faults;
  if (last != 0 && g_config.fault_window_ms != 0 &&
      now - last > g_config.fault_window_ms) {
    // Hysteresis: a fault older than the window does not count toward
    // permanent demotion — the site healed in between.
    slot.faults.store(1, std::memory_order_relaxed);
    faults = 1;
  } else {
    faults = slot.faults.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  const uint8_t b1 = slot.was_sysenter.load(std::memory_order_relaxed)
                         ? kSysenterInsn[1]
                         : kSyscallInsn[1];
  if (patch_bytes_async_safe(site, kSyscallInsn[0], b1) != 0) {
    return false;  // cannot restore the bytes: the fault is uncontainable
  }
  sync_core_all_cpus();

  slot.quarantines.fetch_add(1, std::memory_order_relaxed);
  g_contained.fetch_add(1, std::memory_order_relaxed);
  BlackBox::record(BbEvent::kFault, pc, static_cast<uint64_t>(sig));
  BlackBox::record(BbEvent::kPatch, site, 1 /* restore */);
  if (faults >= g_config.max_faults) {
    slot.state.store(kStDemoted, std::memory_order_release);
    g_demoted.fetch_add(1, std::memory_order_relaxed);
    BlackBox::record(BbEvent::kDemote, site, faults);
  } else {
    slot.retry_at_ms.store(now + backoff_interval_ms(site, now, faults),
                           std::memory_order_relaxed);
    BlackBox::record(BbEvent::kQuarantine, site, faults);
  }
  return true;
}

int sig_index(int sig) {
  switch (sig) {
    case SIGSEGV: return 0;
    case SIGILL: return 1;
    case SIGBUS: return 2;
  }
  return -1;
}

// Hands the signal back to whatever was installed before us. The
// faulting instruction re-executes on handler return and the previous
// disposition fires with a freshly generated (correct) siginfo. This is
// one-way for that signal: once a foreign fault passes through, the
// application's handler owns it.
void chain_to_previous(int sig) {
  const int idx = sig_index(sig);
  if (idx >= 0) ::sigaction(sig, &g_prev_actions[idx], nullptr);
}

void restore_default_dispositions() {
  struct sigaction dfl;
  std::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  for (int sig : kFaultSignals) ::sigaction(sig, &dfl, nullptr);
}

// Uncontainable K23-owned fault: flush the flight recorder (with the
// init-time degradation report attached) and die with the original
// signal via the default disposition.
void die_uncontained(int sig, uint64_t pc) {
  BlackBox::record(BbEvent::kExit, pc, static_cast<uint64_t>(sig));
  BlackBox::flush("uncontained-fault", g_report_buf, g_report_len);
  restore_default_dispositions();
}

// Looks up the ledger slot for a fault at `pc` landing directly on a
// patched site (case A). The fault PC is the instruction start, so pc
// normally equals the site; pc-1 covers a decode landing mid-insn.
HealthSlot* slot_for_pc(uint64_t pc, uint64_t* site_out) {
  HealthSlot* slot = find_slot(pc);
  if (slot != nullptr) {
    *site_out = pc;
    return slot;
  }
  if (pc != 0) {
    slot = find_slot(pc - 1);
    if (slot != nullptr) {
      *site_out = pc - 1;
      return slot;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// The containment handler. Everything below runs under SIGSEGV with the
// application stopped mid-instruction: raw syscalls only, no allocation,
// initial-exec TLS only, and the SUD selector flipped to ALLOW first so
// our own syscalls do not SIGSYS-trap into a second dispatch.
// ---------------------------------------------------------------------------

void fault_handler(int sig, siginfo_t* info, void* ucv) {
  auto* uc = static_cast<ucontext_t*>(ucv);
  const uint64_t pc = static_cast<uint64_t>(uc->uc_mcontext.gregs[REG_RIP]);

  if (t_in_fault) {
    // Fault inside the handler itself: no second chances.
    restore_default_dispositions();
    return;  // re-executes -> default disposition -> death
  }
  t_in_fault = true;

  struct HandlerGuard {
    bool reblock = false;
    ~HandlerGuard() {
      if (reblock) SudSession::set_block(true);
      t_in_fault = false;
    }
  } guard;
  if (SudSession::armed() && SudSession::blocked()) {
    SudSession::set_block(false);
    guard.reblock = true;
  }

  // Case A: the fault is AT a patched site — the site's bytes rotted
  // (concurrent text modification, a bad promotion, injected rot).
  uint64_t site = 0;
  HealthSlot* slot = slot_for_pc(pc, &site);
  if (slot != nullptr) {
    if (quarantine_site(*slot, site, pc, sig)) {
      uc->uc_mcontext.gregs[REG_RIP] = static_cast<greg_t>(site);
      return;  // resume at the restored original instruction
    }
    die_uncontained(sig, pc);
    return;
  }

  // Case B: a dispatch is in flight on behalf of a rewritten site — the
  // fault happened in the dispatcher/hook chain (or injected there). The
  // trampoline frame holds every application register, so unwind the
  // whole dispatch: restore the app state, pop the attribution frame and
  // resume at the (restored) site as if the `call *%rax` never ran.
  TrampolineFrame* frame = Trampoline::active_frame();
  if (frame != nullptr) {
    site = frame->return_address - kSyscallInsnLen;
    slot = find_slot(site);
    if (slot != nullptr && quarantine_site(*slot, site, pc, sig)) {
      auto* g = uc->uc_mcontext.gregs;
      g[REG_R15] = static_cast<greg_t>(frame->r15);
      g[REG_R14] = static_cast<greg_t>(frame->r14);
      g[REG_R13] = static_cast<greg_t>(frame->r13);
      g[REG_R12] = static_cast<greg_t>(frame->r12);
      g[REG_RBP] = static_cast<greg_t>(frame->rbp);
      g[REG_RBX] = static_cast<greg_t>(frame->rbx);
      g[REG_R11] = static_cast<greg_t>(frame->r11);
      g[REG_R10] = static_cast<greg_t>(frame->r10);
      g[REG_R9] = static_cast<greg_t>(frame->r9);
      g[REG_R8] = static_cast<greg_t>(frame->r8);
      g[REG_RCX] = static_cast<greg_t>(frame->rcx);
      g[REG_RDX] = static_cast<greg_t>(frame->rdx);
      g[REG_RSI] = static_cast<greg_t>(frame->rsi);
      g[REG_RDI] = static_cast<greg_t>(frame->rdi);
      g[REG_RAX] = static_cast<greg_t>(frame->rax);
      // App rsp at the faulting call: the stub's pushes sit 8 (ret-addr
      // copy) + 128 (red-zone skip) below the post-call rsp, and the
      // call itself pushed 8 more (see TrampolineFrame in trampoline.h).
      g[REG_RSP] = static_cast<greg_t>(
          reinterpret_cast<uint64_t>(&frame->return_address) + 8 + 128 + 8);
      g[REG_RIP] = static_cast<greg_t>(site);
      Trampoline::pop_active_frame();
      return;
    }
    die_uncontained(sig, pc);
    return;
  }

  // Case C: the fault PC is on the VA-0 trampoline page but no dispatch
  // frame was pushed yet — the sled itself faulted (XOM read, corrupted
  // sled). The `call *%rax` return address is still at [rsp]; undo the
  // call and resume at the restored site. Registers are untouched in the
  // sled, so only rsp/rip need fixing.
  if (pc < 0x1000) {
    const uint64_t rsp = static_cast<uint64_t>(uc->uc_mcontext.gregs[REG_RSP]);
    const uint64_t ret = *reinterpret_cast<const uint64_t*>(rsp);
    site = ret - kSyscallInsnLen;
    slot = find_slot(site);
    if (slot != nullptr && quarantine_site(*slot, site, pc, sig)) {
      uc->uc_mcontext.gregs[REG_RSP] = static_cast<greg_t>(rsp + 8);
      uc->uc_mcontext.gregs[REG_RIP] = static_cast<greg_t>(site);
      return;
    }
    die_uncontained(sig, pc);
    return;
  }

  // Foreign fault: the application's own crash. Restore the previous
  // disposition and let the instruction re-execute under it — K23 must
  // never swallow an application crash. Signals sent by kill() rather
  // than the hardware do not re-raise on return, so re-queue those.
  chain_to_previous(sig);
  if (info != nullptr && info->si_code <= 0) {
    raw_syscall(SYS_tgkill, raw_syscall(SYS_getpid), raw_syscall(SYS_gettid),
                sig);
  }
}

// ---------------------------------------------------------------------------
// Dispatch probe: the single hook the trampoline fast path pays for.
// Installed only when fault injection or full black-box tracing is
// armed, so the healthy production fast path stays at exactly one
// relaxed (null) pointer load.
// ---------------------------------------------------------------------------

void dispatch_probe(uint64_t site, uint64_t nr) {
  // check_dispatch, never check: this probe runs inside trampoline
  // dispatches and SUD signal frames, and a containment-abandoned frame
  // may own the rules mutex — blocking here would wedge every syscall.
  if (FaultInjector::enabled()) {
    if (FaultInjector::check_dispatch("patch_sigsegv") != 0) {
      faultinject_crash(CrashKind::kSegvWrite);
    }
    if (FaultInjector::check_dispatch("thunk_sigill") != 0) {
      faultinject_crash(CrashKind::kIll);
    }
    if (FaultInjector::check_dispatch("hook_fault") != 0) {
      faultinject_crash(CrashKind::kSegvRead);
    }
  }
  if (BlackBox::trace_dispatch()) {
    BlackBox::record(BbEvent::kDispatch, site, nr);
  }
}

void watchdog_main() {
  // Everything this thread does — heartbeat sleeps, re-descent maps
  // reads — is runtime maintenance, invisible to record/replay.
  RuntimeInternalScope internal;
  // Infrastructure thread: its own syscalls must not trap into the
  // (possibly wedged) SUD dispatch path it is watching.
  if (SudSession::armed()) SudSession::set_block(false);
  uint64_t interval_ms = g_config.watchdog_ms / 4;
  if (interval_ms < 10) interval_ms = 10;
  while (!g_watchdog_stop.load(std::memory_order_acquire)) {
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(interval_ms / 1000);
    ts.tv_nsec = static_cast<long>((interval_ms % 1000) * 1000000);
    ::nanosleep(&ts, nullptr);
    if (g_watchdog_stop.load(std::memory_order_acquire)) break;
    if (Health::watchdog_check(monotonic_ms())) break;
  }
}

void clear_ledger() {
  for (auto& slot : g_ledger) {
    slot.site.store(0, std::memory_order_relaxed);
    slot.state.store(kStHealthy, std::memory_order_relaxed);
    slot.faults.store(0, std::memory_order_relaxed);
    slot.quarantines.store(0, std::memory_order_relaxed);
    slot.retry_at_ms.store(0, std::memory_order_relaxed);
    slot.last_fault_ms.store(0, std::memory_order_relaxed);
    slot.was_sysenter.store(false, std::memory_order_relaxed);
  }
  g_registered.store(0, std::memory_order_relaxed);
  g_contained.store(0, std::memory_order_relaxed);
  g_repromotions.store(0, std::memory_order_relaxed);
  g_demoted.store(0, std::memory_order_relaxed);
  g_watchdog_descents.store(0, std::memory_order_relaxed);
}

}  // namespace

const char* site_health_name(SiteHealth state) {
  switch (state) {
    case SiteHealth::kHealthy: return "healthy";
    case SiteHealth::kQuarantined: return "quarantined";
    case SiteHealth::kRepromoting: return "repromoting";
    case SiteHealth::kDemoted: return "demoted";
  }
  return "?";
}

HealthConfig HealthConfig::from_env() {
  HealthConfig config;
  config.enabled = env_flag("K23_HEAL", config.enabled);
  config.max_faults = static_cast<uint32_t>(
      env_u64("K23_HEAL_MAX_FAULTS", config.max_faults, 1, 1000));
  config.backoff_ms = env_u64("K23_HEAL_BACKOFF_MS", config.backoff_ms, 1,
                              3600 * 1000);
  config.watchdog_ms = env_u64("K23_HEAL_WATCHDOG_MS", config.watchdog_ms, 0,
                               3600 * 1000);
  return config;
}

Status Health::init(const HealthConfig& config) {
  if (g_active.load(std::memory_order_acquire)) shutdown();
  g_config = config;
  if (!config.enabled) return Status::ok();
  clear_ledger();

  // Same registration the promotion path does: intent must precede use.
  long rc = raw_syscall(SYS_membarrier,
                        MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED_SYNC_CORE, 0);
  g_membarrier_sync_core.store(rc == 0, std::memory_order_relaxed);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &fault_handler;
  sigemptyset(&sa.sa_mask);
  // SA_NODEFER: a fault inside the handler must re-enter it so the
  // recursion guard can fall through to default death deterministically.
  sa.sa_flags = SA_SIGINFO | SA_NODEFER | SA_ONSTACK;
  for (size_t i = 0; i < kFaultSignalCount; ++i) {
    if (::sigaction(kFaultSignals[i], &sa, &g_prev_actions[i]) != 0) {
      Status st = Status::from_errno("sigaction containment handler");
      for (size_t j = 0; j < i; ++j) {
        ::sigaction(kFaultSignals[j], &g_prev_actions[j], nullptr);
      }
      return st;
    }
  }
  g_handlers_installed = true;

  // Arm the dispatch probe only when someone will consume it; a null
  // probe keeps the healthy fast path at one relaxed load. The check()
  // call forces the injector's lazy K23_FAULTS load so an exported spec
  // is visible before the enabled() test.
  FaultInjector::check("health_init");
  if (FaultInjector::enabled() || BlackBox::trace_dispatch()) {
    Trampoline::set_dispatch_probe(&dispatch_probe);
  }

  if (config.watchdog_ms > 0 && SudSession::armed()) {
    SudSession::set_heartbeat(true);
    g_watchdog_stop.store(false, std::memory_order_release);
    g_watchdog_thread = std::thread(&watchdog_main);
  }

  g_active.store(true, std::memory_order_release);
  K23_LOG(kDebug) << "health armed: max_faults=" << config.max_faults
                  << " backoff_ms=" << config.backoff_ms
                  << " watchdog_ms=" << config.watchdog_ms;
  return Status::ok();
}

void Health::shutdown() {
  if (g_watchdog_thread.joinable()) {
    g_watchdog_stop.store(true, std::memory_order_release);
    g_watchdog_thread.join();
  }
  SudSession::set_heartbeat(false);
  Trampoline::set_dispatch_probe(nullptr);
  if (g_handlers_installed) {
    for (size_t i = 0; i < kFaultSignalCount; ++i) {
      ::sigaction(kFaultSignals[i], &g_prev_actions[i], nullptr);
    }
    g_handlers_installed = false;
  }
  g_active.store(false, std::memory_order_release);
  clear_ledger();
  g_report_len = 0;
}

bool Health::active() { return g_active.load(std::memory_order_acquire); }

void Health::register_site(uint64_t site, bool was_sysenter) {
  if (!g_active.load(std::memory_order_acquire) || site == 0) return;
  size_t idx = slot_hash(site) & (kHealthSlots - 1);
  for (size_t probe = 0; probe < kMaxProbes; ++probe) {
    HealthSlot& slot = g_ledger[idx];
    uint64_t cur = slot.site.load(std::memory_order_acquire);
    if (cur == site) {
      slot.was_sysenter.store(was_sysenter, std::memory_order_relaxed);
      return;
    }
    if (cur == 0) {
      uint64_t expected = 0;
      if (slot.site.compare_exchange_strong(expected, site,
                                            std::memory_order_acq_rel)) {
        slot.was_sysenter.store(was_sysenter, std::memory_order_relaxed);
        g_registered.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (expected == site) {
        slot.was_sysenter.store(was_sysenter, std::memory_order_relaxed);
        return;
      }
    }
    idx = (idx + 1) & (kHealthSlots - 1);
  }
  // Table full: the site simply has no self-healing (dropped silently,
  // exactly like the promotion hit table's probe-budget exhaustion).
}

bool Health::note_sud_hit(uint64_t site) {
  if (!g_active.load(std::memory_order_acquire) || site == 0) return true;
  HealthSlot* slot = find_slot(site);
  if (slot == nullptr) return true;  // not in the ledger: not ours

  const uint32_t st = state_of(*slot);
  if (st == kStHealthy) {
    // A registered, supposedly rewritten site trapping via SUD is a
    // transition race (quarantine claimed, bytes not yet restored).
    // Skip promotion counting either way: promotion must not re-learn a
    // site the ledger already owns.
    return false;
  }
  if (st == kStDemoted || st == kStRepromoting) return false;

  // Quarantined: re-promote when the backoff has expired. Exactly one
  // thread wins the kQuarantined -> kRepromoting CAS; everyone else
  // keeps dispatching via SUD.
  const uint64_t now = monotonic_ms();
  if (now < slot->retry_at_ms.load(std::memory_order_relaxed)) return false;
  uint32_t expected = kStQuarantined;
  if (!slot->state.compare_exchange_strong(expected, kStRepromoting,
                                           std::memory_order_acq_rel)) {
    return false;
  }

  const uint8_t b1 = slot->was_sysenter.load(std::memory_order_relaxed)
                         ? kSysenterInsn[1]
                         : kSyscallInsn[1];
  const auto* bytes = reinterpret_cast<const uint8_t*>(site);
  if (bytes[0] != kSyscallInsn[0] || bytes[1] != b1) {
    // The bytes changed under quarantine (dlclose + remap, hostile
    // patching): never touch this address again.
    slot->state.store(kStDemoted, std::memory_order_release);
    g_demoted.fetch_add(1, std::memory_order_relaxed);
    BlackBox::record(BbEvent::kDemote, site,
                     slot->faults.load(std::memory_order_relaxed));
    return false;
  }
  if (patch_bytes_async_safe(site, kCallRaxInsn[0], kCallRaxInsn[1]) == 0) {
    sync_core_all_cpus();
    slot->state.store(kStHealthy, std::memory_order_release);
    g_repromotions.fetch_add(1, std::memory_order_relaxed);
    BlackBox::record(BbEvent::kRepromote, site,
                     slot->quarantines.load(std::memory_order_relaxed));
    BlackBox::record(BbEvent::kPatch, site, 0 /* patch */);
  } else {
    // Transient refusal (mprotect): push the retry one doubling out.
    const uint32_t f = slot->faults.load(std::memory_order_relaxed);
    slot->retry_at_ms.store(now + backoff_interval_ms(site, now, f + 1),
                            std::memory_order_relaxed);
    slot->state.store(kStQuarantined, std::memory_order_release);
  }
  return false;
}

bool Health::site_patchable(uint64_t site) {
  if (!g_active.load(std::memory_order_acquire)) return true;
  HealthSlot* slot = find_slot(site);
  if (slot == nullptr) return true;
  return state_of(*slot) == kStHealthy;
}

SiteHealth Health::site_state(uint64_t site) {
  HealthSlot* slot = find_slot(site);
  if (slot == nullptr) return SiteHealth::kHealthy;
  return static_cast<SiteHealth>(state_of(*slot));
}

HealthStats Health::stats() {
  HealthStats s;
  s.registered = g_registered.load(std::memory_order_relaxed);
  s.contained = g_contained.load(std::memory_order_relaxed);
  s.repromotions = g_repromotions.load(std::memory_order_relaxed);
  s.demoted = g_demoted.load(std::memory_order_relaxed);
  s.watchdog_descents = g_watchdog_descents.load(std::memory_order_relaxed);
  for (auto& slot : g_ledger) {
    if (slot.site.load(std::memory_order_acquire) == 0) continue;
    const uint32_t st = state_of(slot);
    if (st == kStQuarantined || st == kStRepromoting) ++s.quarantined_now;
  }
  return s;
}

std::vector<SiteHealthInfo> Health::snapshot() {
  std::vector<SiteHealthInfo> out;
  for (auto& slot : g_ledger) {
    const uint64_t site = slot.site.load(std::memory_order_acquire);
    if (site == 0) continue;
    SiteHealthInfo info;
    info.site = site;
    info.state = static_cast<SiteHealth>(state_of(slot));
    info.faults = slot.faults.load(std::memory_order_relaxed);
    info.quarantines = slot.quarantines.load(std::memory_order_relaxed);
    info.retry_at_ms = slot.retry_at_ms.load(std::memory_order_relaxed);
    out.push_back(info);
  }
  return out;
}

void Health::note_report(const DegradationReport& report) {
  g_report_len = report.preformat(g_report_buf, sizeof(g_report_buf));
}

void Health::append_events(DegradationReport* report) {
  for (auto& slot : g_ledger) {
    const uint64_t site = slot.site.load(std::memory_order_acquire);
    if (site == 0) continue;
    const uint32_t st = state_of(slot);
    if (st == kStHealthy &&
        slot.quarantines.load(std::memory_order_relaxed) == 0) {
      continue;
    }
    std::string detail = "site " + to_hex(site) + " " +
                         site_health_name(static_cast<SiteHealth>(st)) +
                         " faults=" +
                         std::to_string(
                             slot.faults.load(std::memory_order_relaxed)) +
                         " quarantines=" +
                         std::to_string(
                             slot.quarantines.load(std::memory_order_relaxed));
    report->add("health", std::move(detail));
  }
}

bool Health::watchdog_check(uint64_t now_ms) {
  if (!g_active.load(std::memory_order_acquire) || g_config.watchdog_ms == 0) {
    return false;
  }
  const SudSession::Heartbeat hb = SudSession::heartbeat();
  if (hb.entered <= hb.exited) return false;  // no dispatch in flight
  if (hb.last_entry_ms == 0 ||
      now_ms < hb.last_entry_ms + g_config.watchdog_ms) {
    return false;
  }
  // A SIGSYS dispatch entered and never exited past the deadline: the
  // hook chain or dispatcher is wedged. (Process-wide heartbeats: one
  // wedged thread amid live traffic refreshes last_entry_ms and evades
  // this check — the tradeoff for a zero-lock trap path.)
  g_watchdog_descents.fetch_add(1, std::memory_order_relaxed);
  BlackBox::record(BbEvent::kWatchdog, 0, now_ms - hb.last_entry_ms);
  descend("sud dispatch wedged: entry without exit past watchdog deadline");
  return true;
}

size_t Health::descend(const char* why) {
  if (!g_active.load(std::memory_order_acquire)) return 0;
  size_t restored = 0;
  for (auto& slot : g_ledger) {
    const uint64_t site = slot.site.load(std::memory_order_acquire);
    if (site == 0) continue;
    for (;;) {
      uint32_t cur = state_of(slot);
      if (cur == kStQuarantined || cur == kStDemoted) break;  // bytes original
      if (slot.state.compare_exchange_weak(cur, kStDemoted,
                                           std::memory_order_acq_rel)) {
        // A re-promoter racing us may flip the site back to healthy — a
        // narrow window that costs one site's descent, never safety.
        const uint8_t b1 = slot.was_sysenter.load(std::memory_order_relaxed)
                               ? kSysenterInsn[1]
                               : kSyscallInsn[1];
        if (patch_bytes_async_safe(site, kSyscallInsn[0], b1) == 0) {
          ++restored;
        }
        g_demoted.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  sync_core_all_cpus();
  // Open the SUD selector — current thread and every thread the
  // dispatcher re-arms from here on. The restored syscall instructions
  // now enter the kernel directly: liveness over interposition.
  if (SudSession::armed()) {
    SudSession::set_default_block(false);
    SudSession::set_block(false);
  }
  BlackBox::record(BbEvent::kDescend, 0, restored);

  // Extended operator-facing report with the per-site quarantine
  // history, flushed atomically through the black-box. Normal context
  // only (the watchdog thread / tests) — this allocates.
  DegradationReport report;
  report.tier = CoverageTier::kNone;
  report.add("watchdog", why);
  append_events(&report);
  char buf[8192];
  const size_t len = report.preformat(buf, sizeof(buf));
  BlackBox::flush("descend", buf, len);
  K23_LOG(kWarn) << "health descend (" << why << "): restored " << restored
                 << " sites, interposition abandoned";
  return restored;
}

bool Health::contain_fault_at(uint64_t pc, int signal) {
  if (!g_active.load(std::memory_order_acquire)) return false;
  uint64_t site = 0;
  HealthSlot* slot = slot_for_pc(pc, &site);
  if (slot == nullptr) {
    TrampolineFrame* frame = Trampoline::active_frame();
    if (frame != nullptr) {
      site = frame->return_address - kSyscallInsnLen;
      slot = find_slot(site);
    }
  }
  if (slot == nullptr) return false;
  return quarantine_site(*slot, site, pc, signal);
}

}  // namespace k23
