// k23_run — the K23 launcher (paper Figure 4, steps 1-3).
//
// Traces the target from its first instruction with ptracer (exhaustive
// startup interposition, P2b), enforces libk23_preload injection through
// every execve (P1a), optionally scrubs the vdso, and detaches once the
// in-process libK23 signals readiness via the fake-syscall protocol.
//
//   k23_run <subcommand> [options] -- program [args...]
//
//   subcommands:
//     run        launch the program interposed (the default)
//     record     launch + capture nondeterministic results into a v3
//                trace (--trace=PATH, default k23.trace)
//     replay     launch serving results from a recorded trace
//                (--trace=PATH; --clock=virtual:rate=N paces the replay)
//     stats      run + print the trace report, capability ladder, and
//                the tracee's exit statistics
//     tree       interpose the whole process tree: per-process
//                offline-log shards (merged back into --log after exit)
//                and, combined with --stats, per-process stats dumps
//                aggregated post-mortem
//
//   options (any subcommand):
//     --offline            record an offline log instead of interposing
//     --log=PATH           offline-log file (default: k23.log)
//     --variant=V          default | ultra | ultra+
//     --mode=M             k23 | logger | zpoline | lazypoline | sud
//     --preload=PATH       libk23_preload.so location (default: alongside
//                          this binary)
//     --keep-vdso          do not scrub AT_SYSINFO_EHDR
//     --deadline-ms=N      detach from a wedged tracee after N ms (0 = off)
//
// The pre-subcommand spellings (`k23_run --stats -- prog`,
// `k23_run --tree -- prog`) keep working as hidden aliases for one
// release; `--help` under a subcommand prints only the environment
// variables scoped to it (the grammar table in common/env.cc).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/syscall_table.h"
#include "common/caps.h"
#include "common/env.h"
#include "common/files.h"
#include "common/strings.h"
#include "common/uring.h"
#include "k23/offline_log.h"
#include "k23/process_tree.h"
#include "ptracer/ptracer.h"

namespace k23 {
namespace {

enum class Subcommand { kRun, kRecord, kReplay, kStats, kTree };

const char* subcommand_name(Subcommand sub) {
  switch (sub) {
    case Subcommand::kRun:
      return "run";
    case Subcommand::kRecord:
      return "record";
    case Subcommand::kReplay:
      return "replay";
    case Subcommand::kStats:
      return "stats";
    case Subcommand::kTree:
      return "tree";
  }
  return "run";
}

unsigned subcommand_scope(Subcommand sub) {
  switch (sub) {
    case Subcommand::kRun:
      return env_scope::kRun;
    case Subcommand::kRecord:
      return env_scope::kRecord;
    case Subcommand::kReplay:
      return env_scope::kReplay;
    case Subcommand::kStats:
    case Subcommand::kTree:
      return env_scope::kStats;
  }
  return env_scope::kAll;
}

std::string default_preload_path() {
  auto exe = self_exe_path();
  if (!exe.is_ok()) return "libk23_preload.so";
  const auto slash = exe.value().rfind('/');
  if (slash == std::string::npos) return "libk23_preload.so";
  return exe.value().substr(0, slash) + "/libk23_preload.so";
}

int usage(const char* argv0, const Subcommand* sub) {
  if (sub == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [run|record|replay|stats|tree] [options] "
                 "-- program [args...]\n"
                 "       (see `%s <subcommand> --help`)\n",
                 argv0, argv0);
    return 2;
  }
  const char* extra = "";
  if (*sub == Subcommand::kRecord) {
    extra = " [--trace=PATH]";
  } else if (*sub == Subcommand::kReplay) {
    extra = " [--trace=PATH] [--clock=virtual:rate=N]";
  }
  std::fprintf(stderr,
               "usage: %s %s%s [--offline] [--log=PATH] [--variant=V] "
               "[--mode=M] [--preload=PATH] [--keep-vdso] [--stats] "
               "[--tree] [--deadline-ms=N] -- program [args...]\n",
               argv0, subcommand_name(*sub), extra);
  return 2;
}

// --help: the usage line plus the K23_* environment grammar, printed
// straight from the table in common/env.h — the launcher never maintains
// its own copy. Under a subcommand only the rows scoped to it appear.
int help(const char* argv0, const Subcommand* sub) {
  usage(argv0, sub);
  const unsigned scope = sub != nullptr ? subcommand_scope(*sub) : 0;
  std::fprintf(stderr,
               "\nrecognized environment variables (k23_run forwards the "
               "current environment\nto the tracee; the flags above set "
               "K23_MODE/K23_LOG_FILE/... on top of it):\n");
  size_t count = 0;
  const EnvSpec* table = env_spec_table(&count);
  for (size_t i = 0; i < count; ++i) {
    const EnvSpec& spec = table[i];
    if (scope != 0 && (spec.scopes & scope) == 0) continue;
    std::fprintf(stderr, "  %-24s %s\n", spec.name, spec.description);
    std::fprintf(stderr, "  %-24s   value: %s (default: %s)\n", "",
                 spec.grammar, spec.fallback);
  }
  std::fprintf(stderr,
               "\nK23_BATCH flush backend detected on this machine: %s\n",
               uring_backend_summary());
  return 0;
}

// Post-mortem half of tree mode: fold every per-process log shard back
// into the base log (crash-atomic save, shards removed on success) and,
// when stats dumps were requested, print the per-process and aggregate
// view.
void merge_tree_artifacts(const std::string& log_path, bool stats,
                          const std::string& stats_dir) {
  LogLoadReport merge_report;
  const std::vector<std::string> shards = discover_log_shards(log_path);
  if (!shards.empty()) {
    auto merged = load_merged_shards(log_path, &merge_report);
    if (merged.is_ok() && merged.value().save(log_path).is_ok()) {
      for (const std::string& shard : shards) ::unlink(shard.c_str());
      std::fprintf(stderr,
                   "k23_run: merged %zu log shard%s into %s (%zu sites)\n",
                   shards.size(), shards.size() == 1 ? "" : "s",
                   log_path.c_str(), merged.value().size());
      for (const std::string& issue : merge_report.issues) {
        std::fprintf(stderr, "k23_run: shard issue: %s\n", issue.c_str());
      }
    } else {
      std::fprintf(stderr, "k23_run: shard merge failed: %s\n",
                   merged.is_ok() ? "cannot save merged log"
                                  : merged.message().c_str());
    }
  }

  if (!stats || stats_dir.empty()) return;
  auto dumps = ProcessTree::load_stats_dir(stats_dir);
  if (!dumps.is_ok() || dumps.value().empty()) return;
  static const char* kPathNames[] = {"rewritten", "sud-fallback", "ptrace",
                                     "offline"};
  ProcessStatsDump aggregate;
  std::fprintf(stderr, "k23_run: process tree (%zu stats dump%s):\n",
               dumps.value().size(),
               dumps.value().size() == 1 ? "" : "s");
  for (const ProcessStatsDump& dump : dumps.value()) {
    std::fprintf(stderr, "  pid %-8d %llu syscalls", dump.pid,
                 static_cast<unsigned long long>(dump.total));
    for (size_t p = 0; p < 4; ++p) {
      aggregate.by_path[p] += dump.by_path[p];
      if (dump.by_path[p] != 0) {
        std::fprintf(stderr, ", %s %llu", kPathNames[p],
                     static_cast<unsigned long long>(dump.by_path[p]));
      }
    }
    aggregate.total += dump.total;
    aggregate.promoted += dump.promoted;
    aggregate.accelerated += dump.accelerated;
    aggregate.batched += dump.batched;
    aggregate.flushed += dump.flushed;
    aggregate.replayed += dump.replayed;
    aggregate.diverged += dump.diverged;
    if (dump.accelerated != 0) {
      std::fprintf(stderr, ", accelerated %llu",
                   static_cast<unsigned long long>(dump.accelerated));
    }
    if (dump.batched != 0) {
      // batched:flushed is this process's write-coalescing ratio.
      std::fprintf(stderr, ", batched %llu/%llu flushes",
                   static_cast<unsigned long long>(dump.batched),
                   static_cast<unsigned long long>(dump.flushed));
    }
    if (dump.replayed != 0 || dump.diverged != 0) {
      std::fprintf(stderr, ", replayed %llu (%llu diverged)",
                   static_cast<unsigned long long>(dump.replayed),
                   static_cast<unsigned long long>(dump.diverged));
    }
    std::fprintf(stderr, ", promoted %llu\n",
                 static_cast<unsigned long long>(dump.promoted));
  }
  std::fprintf(stderr,
               "  tree total %llu syscalls, %llu accelerated, "
               "%llu promoted sites\n",
               static_cast<unsigned long long>(aggregate.total),
               static_cast<unsigned long long>(aggregate.accelerated),
               static_cast<unsigned long long>(aggregate.promoted));
  if (aggregate.batched != 0) {
    std::fprintf(
        stderr, "  tree batching: %llu writes in %llu flushes (%.1fx)\n",
        static_cast<unsigned long long>(aggregate.batched),
        static_cast<unsigned long long>(aggregate.flushed),
        aggregate.flushed != 0 ? static_cast<double>(aggregate.batched) /
                                     static_cast<double>(aggregate.flushed)
                               : 0.0);
  }
  if (aggregate.replayed != 0 || aggregate.diverged != 0) {
    std::fprintf(stderr, "  tree replay: %llu replayed, %llu diverged\n",
                 static_cast<unsigned long long>(aggregate.replayed),
                 static_cast<unsigned long long>(aggregate.diverged));
  }
}

}  // namespace
}  // namespace k23

int main(int argc, char** argv) {
  using namespace k23;

  // Subcommand first, flags after. A leading flag (or program path)
  // falls through to the legacy flag-soup parse — the pre-subcommand
  // spellings stay valid as hidden aliases.
  Subcommand sub = Subcommand::kRun;
  bool have_sub = false;
  int i = 1;
  if (argc > 1) {
    const std::string_view first = argv[1];
    if (first == "run") {
      sub = Subcommand::kRun;
      have_sub = true;
    } else if (first == "record") {
      sub = Subcommand::kRecord;
      have_sub = true;
    } else if (first == "replay") {
      sub = Subcommand::kReplay;
      have_sub = true;
    } else if (first == "stats") {
      sub = Subcommand::kStats;
      have_sub = true;
    } else if (first == "tree") {
      sub = Subcommand::kTree;
      have_sub = true;
    }
    if (have_sub) i = 2;
  }
  const Subcommand* sub_for_help = have_sub ? &sub : nullptr;

  bool offline = false;
  bool keep_vdso = false;
  bool stats = sub == Subcommand::kStats;
  bool tree = sub == Subcommand::kTree;
  uint64_t deadline_ms = 0;
  std::string log_path = "k23.log";
  std::string variant = "default";
  std::string mode;
  std::string preload = default_preload_path();
  std::string trace_path = "k23.trace";
  std::string clock_spec;

  for (; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--") {
      ++i;
      break;
    }
    if (arg == "--help" || arg == "-h") {
      return help(argv[0], sub_for_help);
    } else if (arg == "--offline") {
      offline = true;
    } else if (arg == "--keep-vdso") {
      keep_vdso = true;
    } else if (arg == "--stats") {
      stats = true;  // hidden alias for the stats subcommand
    } else if (arg == "--tree") {
      tree = true;  // hidden alias for the tree subcommand
    } else if (arg.rfind("--log=", 0) == 0) {
      log_path = arg.substr(6);
    } else if (arg.rfind("--variant=", 0) == 0) {
      variant = arg.substr(10);
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode = arg.substr(7);
    } else if (arg.rfind("--preload=", 0) == 0) {
      preload = arg.substr(10);
    } else if (arg.rfind("--trace=", 0) == 0 &&
               (sub == Subcommand::kRecord || sub == Subcommand::kReplay)) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--clock=", 0) == 0 && sub == Subcommand::kReplay) {
      clock_spec = arg.substr(8);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      auto parsed = parse_u64(arg.substr(14));
      if (!parsed) return usage(argv[0], sub_for_help);
      deadline_ms = *parsed;
    } else {
      return usage(argv[0], sub_for_help);
    }
  }
  if (i >= argc) return usage(argv[0], sub_for_help);

  std::vector<std::string> target(argv + i, argv + argc);
  if (mode.empty()) mode = offline ? "logger" : "k23";

  EnvBlock env = EnvBlock::from_current();
  env.set("K23_MODE", mode);
  env.set("K23_LOG_FILE", log_path);
  env.set("K23_VARIANT", variant);
  if (sub == Subcommand::kRecord) {
    env.set("K23_RECORD", trace_path);
    env.unset("K23_REPLAY");
  } else if (sub == Subcommand::kReplay) {
    env.set("K23_REPLAY", trace_path);
    env.unset("K23_RECORD");
    if (!clock_spec.empty()) env.set("K23_CLOCK", clock_spec);
  }
  // The interesting counters (per-path dispatch totals, promotion
  // activity) live in the tracee's libk23_preload, not here: ask it to
  // dump them at exit.
  if (stats) env.set("K23_STATS", "1");
  std::string stats_dir;
  if (tree) {
    // Whole-tree interposition: follow children across fork/exec, give
    // each process its own log shard, and (with --stats) its own stats
    // dump directory entry — both merged after the tree exits.
    env.set("K23_FOLLOW", "on");
    env.set("K23_LOG_SHARDS", "1");
    if (stats) {
      stats_dir = log_path + ".stats.d";
      if (!make_dir(stats_dir).is_ok()) {
        std::fprintf(stderr, "k23_run: cannot create %s\n",
                     stats_dir.c_str());
        return 1;
      }
      env.set("K23_STATS_DIR", stats_dir);
    }
  }
  std::vector<std::string> env_strings;
  for (const auto& entry : env.entries()) env_strings.push_back(entry);

  Ptracer::Options options;
  options.preload_library = preload;
  options.disable_vdso = !keep_vdso;
  // The offline phase keeps the tracer attached for the whole run (its
  // ptracer-like component only guards injection, not performance);
  // online mode detaches at the libK23 handoff.
  options.allow_handoff = !offline;
  options.deadline_ms = deadline_ms;

  Ptracer tracer(options);
  auto report = tracer.run(target, &env_strings);
  if (!report.is_ok()) {
    std::fprintf(stderr, "k23_run: %s\n", report.message().c_str());
    return 1;
  }

  if (stats) {
    const TraceReport& r = report.value();
    std::fprintf(stderr, "k23_run: %s\n", capabilities().summary().c_str());
    std::fprintf(stderr, "%s\n",
                 degradation_ladder_summary(capabilities()).c_str());
    std::fprintf(stderr, "k23_run: traced pid %d, %s\n", r.pid,
                 !r.detached          ? "traced to exit"
                 : r.deadline_expired ? "detached at deadline"
                                      : "detached at libK23 handoff");
    if (r.tracee_died) {
      std::fprintf(stderr, "k23_run: tracee died mid-trace\n");
    }
    if (r.deadline_expired) {
      std::fprintf(stderr,
                   "k23_run: trace deadline expired; tracee detached\n");
    }
    std::fprintf(stderr,
                 "k23_run: %llu syscalls while attached, %llu execs, "
                 "%llu env rewrites, %llu vdso scrubs\n",
                 static_cast<unsigned long long>(
                     r.state.startup_syscall_count),
                 static_cast<unsigned long long>(r.state.execve_count),
                 static_cast<unsigned long long>(r.state.env_rewrites),
                 static_cast<unsigned long long>(r.state.vdso_scrubs));
    for (const auto& [nr, count] : r.syscall_counts) {
      const char* name = syscall_name(nr);
      std::fprintf(stderr, "  %-24s %llu\n", name != nullptr ? name : "?",
                   static_cast<unsigned long long>(count));
    }
  }

  if (report.value().deadline_expired) {
    // The whole point of --deadline-ms was to stop waiting on a wedged
    // tracee: leave it running detached and exit like timeout(1) does.
    std::fprintf(stderr,
                 "k23_run: deadline expired; tracee %d left running\n",
                 report.value().pid);
    return 124;
  }
  if (report.value().detached) {
    // The tracee runs on unattended; mirror its lifetime.
    int status = 0;
    ::waitpid(report.value().pid, &status, 0);
    if (tree) merge_tree_artifacts(log_path, stats, stats_dir);
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128;
  }
  if (tree) merge_tree_artifacts(log_path, stats, stats_dir);
  return report.value().exit_code >= 0 ? report.value().exit_code : 1;
}
