// k23_run — the K23 launcher (paper Figure 4, steps 1-3).
//
// Traces the target from its first instruction with ptracer (exhaustive
// startup interposition, P2b), enforces libk23_preload injection through
// every execve (P1a), optionally scrubs the vdso, and detaches once the
// in-process libK23 signals readiness via the fake-syscall protocol.
//
//   k23_run [options] -- program [args...]
//     --offline            record an offline log instead of interposing
//     --log=PATH           offline-log file (default: k23.log)
//     --variant=V          default | ultra | ultra+
//     --mode=M             k23 | logger | zpoline | lazypoline | sud
//     --preload=PATH       libk23_preload.so location (default: alongside
//                          this binary)
//     --keep-vdso          do not scrub AT_SYSINFO_EHDR
//     --stats              print the trace report + capability ladder
//     --deadline-ms=N      detach from a wedged tracee after N ms (0 = off)
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/syscall_table.h"
#include "common/caps.h"
#include "common/env.h"
#include "common/files.h"
#include "common/strings.h"
#include "ptracer/ptracer.h"

namespace k23 {
namespace {

std::string default_preload_path() {
  auto exe = self_exe_path();
  if (!exe.is_ok()) return "libk23_preload.so";
  const auto slash = exe.value().rfind('/');
  if (slash == std::string::npos) return "libk23_preload.so";
  return exe.value().substr(0, slash) + "/libk23_preload.so";
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--offline] [--log=PATH] [--variant=V] "
               "[--mode=M] [--preload=PATH] [--keep-vdso] [--stats] "
               "[--deadline-ms=N] -- program [args...]\n",
               argv0);
  return 2;
}

}  // namespace
}  // namespace k23

int main(int argc, char** argv) {
  using namespace k23;

  bool offline = false;
  bool keep_vdso = false;
  bool stats = false;
  uint64_t deadline_ms = 0;
  std::string log_path = "k23.log";
  std::string variant = "default";
  std::string mode;
  std::string preload = default_preload_path();

  int i = 1;
  for (; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--") {
      ++i;
      break;
    }
    if (arg == "--offline") {
      offline = true;
    } else if (arg == "--keep-vdso") {
      keep_vdso = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg.rfind("--log=", 0) == 0) {
      log_path = arg.substr(6);
    } else if (arg.rfind("--variant=", 0) == 0) {
      variant = arg.substr(10);
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode = arg.substr(7);
    } else if (arg.rfind("--preload=", 0) == 0) {
      preload = arg.substr(10);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      auto parsed = parse_u64(arg.substr(14));
      if (!parsed) return usage(argv[0]);
      deadline_ms = *parsed;
    } else {
      return usage(argv[0]);
    }
  }
  if (i >= argc) return usage(argv[0]);

  std::vector<std::string> target(argv + i, argv + argc);
  if (mode.empty()) mode = offline ? "logger" : "k23";

  EnvBlock env = EnvBlock::from_current();
  env.set("K23_MODE", mode);
  env.set("K23_LOG_FILE", log_path);
  env.set("K23_VARIANT", variant);
  // The interesting counters (per-path dispatch totals, promotion
  // activity) live in the tracee's libk23_preload, not here: ask it to
  // dump them at exit.
  if (stats) env.set("K23_STATS", "1");
  std::vector<std::string> env_strings;
  for (const auto& entry : env.entries()) env_strings.push_back(entry);

  Ptracer::Options options;
  options.preload_library = preload;
  options.disable_vdso = !keep_vdso;
  // The offline phase keeps the tracer attached for the whole run (its
  // ptracer-like component only guards injection, not performance);
  // online mode detaches at the libK23 handoff.
  options.allow_handoff = !offline;
  options.deadline_ms = deadline_ms;

  Ptracer tracer(options);
  auto report = tracer.run(target, &env_strings);
  if (!report.is_ok()) {
    std::fprintf(stderr, "k23_run: %s\n", report.message().c_str());
    return 1;
  }

  if (stats) {
    const TraceReport& r = report.value();
    std::fprintf(stderr, "k23_run: %s\n", capabilities().summary().c_str());
    std::fprintf(stderr, "%s\n",
                 degradation_ladder_summary(capabilities()).c_str());
    std::fprintf(stderr, "k23_run: traced pid %d, %s\n", r.pid,
                 !r.detached          ? "traced to exit"
                 : r.deadline_expired ? "detached at deadline"
                                      : "detached at libK23 handoff");
    if (r.tracee_died) {
      std::fprintf(stderr, "k23_run: tracee died mid-trace\n");
    }
    if (r.deadline_expired) {
      std::fprintf(stderr,
                   "k23_run: trace deadline expired; tracee detached\n");
    }
    std::fprintf(stderr,
                 "k23_run: %llu syscalls while attached, %llu execs, "
                 "%llu env rewrites, %llu vdso scrubs\n",
                 static_cast<unsigned long long>(
                     r.state.startup_syscall_count),
                 static_cast<unsigned long long>(r.state.execve_count),
                 static_cast<unsigned long long>(r.state.env_rewrites),
                 static_cast<unsigned long long>(r.state.vdso_scrubs));
    for (const auto& [nr, count] : r.syscall_counts) {
      const char* name = syscall_name(nr);
      std::fprintf(stderr, "  %-24s %llu\n", name != nullptr ? name : "?",
                   static_cast<unsigned long long>(count));
    }
  }

  if (report.value().deadline_expired) {
    // The whole point of --deadline-ms was to stop waiting on a wedged
    // tracee: leave it running detached and exit like timeout(1) does.
    std::fprintf(stderr,
                 "k23_run: deadline expired; tracee %d left running\n",
                 report.value().pid);
    return 124;
  }
  if (report.value().detached) {
    // The tracee runs on unattended; mirror its lifetime.
    int status = 0;
    ::waitpid(report.value().pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128;
  }
  return report.value().exit_code >= 0 ? report.value().exit_code : 1;
}
