// Graceful-degradation ladder for the K23 online phase.
//
// K23's full configuration — selective rewriting of offline-validated
// sites plus an exhaustive SUD fallback — needs several kernel features
// and mutable text pages at init time. Any of those can be refused
// (ENOMEM on mprotect, a pre-5.11 kernel without SUD, a seccomp-confined
// container). Rather than failing closed, init walks a ladder:
//
//   rewrite + SUD  ->  SUD-only  ->  seccomp-only  ->  (error)
//
// with two side rungs (rewrite + seccomp when SUD alone is missing, and
// rewrite-only when the user disabled the fallback). Each step down is
// recorded as a DegradationEvent so callers — the caps probe, the
// launcher, the preload constructor — can report exactly what coverage
// the process actually has, instead of silently running with less.
#pragma once

#include <string>
#include <vector>

namespace k23 {

// Interposition coverage actually achieved, best to worst. "Exhaustive"
// means every syscall in the process is intercepted; rewrite-only covers
// just the offline-validated sites.
enum class CoverageTier {
  kRewriteAndSud,      // the full K23 design: fast path + exhaustive net
  kRewriteAndSeccomp,  // fast path + exhaustive net via SIGSYS traps
  kRewriteOnly,        // no exhaustive net (sud_fallback disabled & no alt)
  kSudOnly,            // exhaustive but every syscall pays the SUD trap
  kSeccompOnly,        // exhaustive, slowest; filter is also irrevocable
  kNone,               // nothing armed — init failed outright
};

const char* tier_name(CoverageTier tier);

struct DegradationEvent {
  const char* component = "";  // "patcher", "sud", "seccomp", "offline-log"
  std::string detail;
};

struct DegradationReport {
  CoverageTier tier = CoverageTier::kRewriteAndSud;
  std::vector<DegradationEvent> events;

  void add(const char* component, std::string detail) {
    events.push_back(DegradationEvent{component, std::move(detail)});
  }
  // Anything short of the configuration the caller asked for.
  bool degraded() const { return !events.empty(); }

  // Multi-line human-readable summary (one line per event + final tier).
  std::string summary() const;

  // Async-signal-safe rendering for the exit/fault path: formats the
  // summary into the caller's buffer — no malloc, no stdio, truncating —
  // with every line prefixed "deg <pid>" so dumps from a k23_run process
  // tree stay attributable after interleaving. Returns the length.
  // (Reads the already-built detail strings only; building the report
  // itself is NOT signal-safe — preformat early, dump late.)
  size_t preformat(char* buf, size_t cap) const;
};

// The atomic dump: ONE write() of a preformatted report to `fd`. With an
// O_APPEND fd, concurrent dumps interleave per-report, never per-byte.
// Async-signal-safe; returns false on a failed/short write.
bool dump_preformatted(int fd, const char* buf, size_t len);

}  // namespace k23
