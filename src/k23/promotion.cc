#include "k23/promotion.h"

#include <sys/mman.h>
#include <sys/syscall.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <span>

#include "arch/raw_syscall.h"
#include "common/env.h"
#include "interpose/dispatch.h"
#include "common/strings.h"
#include "disasm/decoder.h"
#include "faultinject/faultinject.h"
#include "health/health.h"
#include "procmaps/procmaps.h"
#include "rewrite/nopatch.h"
#include "rewrite/patcher.h"

#ifndef MEMBARRIER_CMD_PRIVATE_EXPEDITED_SYNC_CORE
#define MEMBARRIER_CMD_PRIVATE_EXPEDITED_SYNC_CORE (1 << 5)
#endif
#ifndef MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED_SYNC_CORE
#define MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED_SYNC_CORE (1 << 6)
#endif

namespace k23 {
namespace {

// Why a site failed promotion. Stored per slot so append_events can
// narrate each refusal without the handler having allocated anything.
enum RefuseReason : uint8_t {
  kReasonNone = 0,
  kReasonNopatch,        // inside the k23_nopatch section
  kReasonCacheLineSplit, // bytes straddle a cache line: no atomic store
  kReasonRegion,         // unmapped / writable / anonymous / non-exec
  kReasonDecode,         // bytes are not a syscall/sysenter instruction
  kReasonCapacity,       // max_sites promoted already / set table full
  kReasonMprotect,       // kernel (or fault injector) refused mprotect
  kReasonQuarantined,    // health ledger owns the site (quarantined/demoted)
};

const char* refuse_reason_name(uint8_t reason) {
  switch (reason) {
    case kReasonNopatch:        return "site in k23_nopatch section";
    case kReasonCacheLineSplit: return "bytes straddle a cache line";
    case kReasonRegion:         return "region not file-backed r-x";
    case kReasonDecode:         return "bytes do not decode as syscall";
    case kReasonCapacity:       return "promotion capacity exhausted";
    case kReasonMprotect:       return "mprotect refused";
    case kReasonQuarantined:    return "health ledger owns the site";
    default:                    return "unknown";
  }
}

// Per-site state machine. Exactly one thread wins the kCounting ->
// kPromoting CAS, so validation+patching is single-threaded per site even
// though hits arrive concurrently from every thread's SIGSYS handler.
enum SlotState : uint32_t {
  kCounting = 0,
  kPromoting,
  kPromoted,
  kRefused,
};

struct alignas(64) HitSlot {
  std::atomic<uint64_t> site{0};  // 0 = free
  std::atomic<uint32_t> hits{0};
  std::atomic<uint32_t> state{kCounting};
  std::atomic<uint8_t> refuse_reason{kReasonNone};
  std::atomic<int> refuse_errno{0};
  bool was_sysenter = false;  // written only by the kPromoting owner
};

constexpr size_t kHitSlots = 1024;       // power of two (mask probing)
constexpr size_t kMaxProbes = 32;        // bound handler latency when full
constexpr size_t kPromotedSetSlots = 512;

// Static tables: the SIGSYS handler must never allocate, and the
// trampoline validator reads the promoted set on every rewritten-site
// entry, so both live in the image for the life of the process.
HitSlot g_hit_table[kHitSlots];
std::atomic<uint64_t> g_promoted_set[kPromotedSetSlots];

std::atomic<bool> g_active{false};
PromotionConfig g_config;
std::atomic<uint64_t> g_sud_hits{0};
std::atomic<uint64_t> g_promoted{0};
std::atomic<uint64_t> g_refused{0};
std::atomic<uint64_t> g_dropped{0};
std::atomic<uint64_t> g_watched{0};
std::atomic<bool> g_membarrier_sync_core{false};

size_t slot_hash(uint64_t site) {
  return static_cast<size_t>((site * 0x9E3779B97F4A7C15ull) >> 33);
}

// Registers the site with the trampoline-side membership test. Insert
// happens BEFORE the bytes flip so a thread that executes the freshly
// patched `call *%rax` always passes the entry check (P4a window).
bool promoted_set_insert(uint64_t site) {
  size_t idx = slot_hash(site) & (kPromotedSetSlots - 1);
  for (size_t probe = 0; probe < kPromotedSetSlots; ++probe) {
    uint64_t cur = g_promoted_set[idx].load(std::memory_order_acquire);
    if (cur == site) return true;
    if (cur == 0) {
      uint64_t expected = 0;
      if (g_promoted_set[idx].compare_exchange_strong(
              expected, site, std::memory_order_acq_rel)) {
        return true;
      }
      if (expected == site) return true;
      // Lost the race to a different site; keep probing.
    }
    idx = (idx + 1) & (kPromotedSetSlots - 1);
  }
  return false;  // set full
}

bool promoted_set_contains(uint64_t site) {
  size_t idx = slot_hash(site) & (kPromotedSetSlots - 1);
  for (size_t probe = 0; probe < kPromotedSetSlots; ++probe) {
    uint64_t cur = g_promoted_set[idx].load(std::memory_order_acquire);
    if (cur == site) return true;
    if (cur == 0) return false;  // insert-only table: empty ends the chain
    idx = (idx + 1) & (kPromotedSetSlots - 1);
  }
  return false;
}

// Finds or claims the hit slot for `site`. Probing is bounded so the
// SIGSYS handler's latency stays bounded when the table is pathologically
// full; nullptr means the table cannot take the site.
HitSlot* claim_slot(uint64_t site) {
  size_t idx = slot_hash(site) & (kHitSlots - 1);
  for (size_t probe = 0; probe < kMaxProbes; ++probe) {
    HitSlot& candidate = g_hit_table[idx];
    uint64_t cur = candidate.site.load(std::memory_order_acquire);
    if (cur == site) return &candidate;
    if (cur == 0) {
      uint64_t expected = 0;
      if (candidate.site.compare_exchange_strong(expected, site,
                                                 std::memory_order_acq_rel)) {
        return &candidate;
      }
      if (expected == site) return &candidate;
    }
    idx = (idx + 1) & (kHitSlots - 1);
  }
  return nullptr;
}

void refuse(HitSlot& slot, uint8_t reason, int err = 0) {
  slot.refuse_reason.store(reason, std::memory_order_relaxed);
  slot.refuse_errno.store(err, std::memory_order_relaxed);
  slot.state.store(kRefused, std::memory_order_release);
  g_refused.fetch_add(1, std::memory_order_relaxed);
}

// The transactional patch. Runs inside the SIGSYS handler of the thread
// that crossed the threshold, so: raw syscalls only, no allocation, and
// every failure path leaves the original bytes live (mprotect-restore is
// attempted even on the failure paths — the region was validated r-x one
// step earlier, so the restore target is known-correct, unlike
// lazypoline's blind r-x assumption).
bool patch_promoted_site(HitSlot& slot, uint64_t site, int orig_prot,
                         int* out_errno) {
  const uint64_t page = site & ~0xfffull;
  // same_cache_line(site) already passed, so both bytes share the page.
  if (fault_fires("mprotect")) {
    *out_errno = errno;
    return false;
  }
  long rc = raw_syscall(SYS_mprotect, static_cast<long>(page), 0x1000,
                        PROT_READ | PROT_WRITE | PROT_EXEC);
  if (rc != 0) {
    *out_errno = syscall_errno(rc);
    return false;
  }

  // Re-verify under write access: the validation read and this store are
  // not atomic together, and a concurrent shutdown/unpatch must not be
  // double-patched.
  auto* p = reinterpret_cast<uint8_t*>(site);
  const bool is_syscall = p[0] == kSyscallInsn[0] && p[1] == kSyscallInsn[1];
  const bool is_sysenter = p[0] == kSysenterInsn[0] && p[1] == kSysenterInsn[1];
  if (!is_syscall && !is_sysenter) {
    raw_syscall(SYS_mprotect, static_cast<long>(page), 0x1000, orig_prot);
    *out_errno = 0;
    return false;
  }
  slot.was_sysenter = is_sysenter;

  // P5 discipline: one atomic 16-bit store (both bytes in one cache
  // line), then serialize this core...
  const uint16_t packed = static_cast<uint16_t>(kCallRaxInsn[0]) |
                          static_cast<uint16_t>(kCallRaxInsn[1]) << 8;
  __atomic_store_n(reinterpret_cast<uint16_t*>(p), packed, __ATOMIC_SEQ_CST);
  serialize_instruction_stream();
  // ...and every other core: threads mid-fetch pipeline either encoding
  // (both valid), and the expedited SYNC_CORE membarrier forces all cores
  // to re-fetch before their next instruction so no stale decode of the
  // 0f 05 bytes survives the transition.
  if (g_membarrier_sync_core.load(std::memory_order_relaxed)) {
    raw_syscall(SYS_membarrier, MEMBARRIER_CMD_PRIVATE_EXPEDITED_SYNC_CORE, 0);
  }

  raw_syscall(SYS_mprotect, static_cast<long>(page), 0x1000, orig_prot);
  return true;
}

// Validation predicate + patch. Same checks as the startup rewrite path
// (k23.cc byte validation + offline_log region rules), re-expressed with
// async-signal-safe primitives.
void attempt_promotion(HitSlot& slot, uint64_t site) {
  // The maps probe below re-enters the funnel through interposed libc;
  // its timing is hit-count driven and must stay out of record/replay
  // traces (see RuntimeInternalScope in interpose/dispatch.h).
  RuntimeInternalScope internal;
  if (g_promoted.load(std::memory_order_relaxed) >= g_config.max_sites) {
    refuse(slot, kReasonCapacity);
    return;
  }
  if (in_nopatch_section(site)) {
    refuse(slot, kReasonNopatch);
    return;
  }
  if (!Health::site_patchable(site)) {
    // The self-healing ledger quarantined or demoted this site; patching
    // it back from the SIGSYS path would undo exactly that decision.
    refuse(slot, kReasonQuarantined);
    return;
  }
  if (!same_cache_line(site)) {
    refuse(slot, kReasonCacheLineSplit);
    return;
  }
  RegionProbe probe;
  if (!query_address_region_noalloc(site, &probe) || probe.prot < 0 ||
      (probe.prot & PROT_READ) == 0 || (probe.prot & PROT_EXEC) == 0 ||
      (probe.prot & PROT_WRITE) != 0 || !probe.file_backed) {
    refuse(slot, kReasonRegion);
    return;
  }
  const auto* bytes = reinterpret_cast<const uint8_t*>(site);
  DecodedInsn insn = decode_insn(std::span<const uint8_t>(bytes, 2));
  if (insn.kind != InsnKind::kSyscall && insn.kind != InsnKind::kSysenter) {
    refuse(slot, kReasonDecode);
    return;
  }
  if (!promoted_set_insert(site)) {
    refuse(slot, kReasonCapacity);
    return;
  }
  int err = 0;
  if (!patch_promoted_site(slot, site, probe.prot, &err)) {
    // The promoted-set entry stays behind (insert-only table), which is
    // benign: the site's bytes are untouched, so nothing ever enters the
    // trampoline from it. The slot records why for append_events.
    refuse(slot, kReasonMprotect, err);
    return;
  }
  slot.state.store(kPromoted, std::memory_order_release);
  g_promoted.fetch_add(1, std::memory_order_relaxed);
  // Promoted sites get the same self-healing coverage as startup
  // rewrites (no-op when health is down).
  Health::register_site(site, slot.was_sysenter);
}

}  // namespace

PromotionConfig PromotionConfig::from_env() {
  PromotionConfig config;
  config.enabled = env_flag("K23_PROMOTE", config.enabled);
  config.threshold = static_cast<uint32_t>(
      env_u64("K23_PROMOTE_THRESHOLD", config.threshold, 1, UINT32_MAX));
  config.max_sites = static_cast<uint32_t>(
      env_u64("K23_PROMOTE_MAX_SITES", config.max_sites, 0, UINT32_MAX));
  return config;
}

Status Promotion::init(const PromotionConfig& config) {
  shutdown();  // idempotent re-init (tests)
  g_config = config;
  if (!config.enabled) return Status::ok();

  // Register intent to use the expedited SYNC_CORE membarrier; the
  // registration must happen before any thread relies on it. A kernel
  // without it (pre-4.16) degrades to the atomic-store-only guarantee.
  long rc = raw_syscall(SYS_membarrier,
                        MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED_SYNC_CORE, 0);
  g_membarrier_sync_core.store(rc == 0, std::memory_order_relaxed);

  g_active.store(true, std::memory_order_release);
  return Status::ok();
}

void Promotion::shutdown() {
  g_active.store(false, std::memory_order_release);
  CodePatcher patcher;
  for (auto& slot : g_hit_table) {
    const uint64_t site = slot.site.load(std::memory_order_acquire);
    if (site != 0 &&
        slot.state.load(std::memory_order_acquire) == kPromoted) {
      patcher.unpatch_site(site, slot.was_sysenter);
    }
    slot.site.store(0, std::memory_order_relaxed);
    slot.hits.store(0, std::memory_order_relaxed);
    slot.state.store(kCounting, std::memory_order_relaxed);
    slot.refuse_reason.store(kReasonNone, std::memory_order_relaxed);
    slot.refuse_errno.store(0, std::memory_order_relaxed);
    slot.was_sysenter = false;
  }
  for (auto& entry : g_promoted_set) {
    entry.store(0, std::memory_order_relaxed);
  }
  g_sud_hits.store(0, std::memory_order_relaxed);
  g_promoted.store(0, std::memory_order_relaxed);
  g_refused.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_watched.store(0, std::memory_order_relaxed);
}

bool Promotion::active() { return g_active.load(std::memory_order_acquire); }

bool Promotion::note_sud_hit(uint64_t site_address) {
  if (!g_active.load(std::memory_order_acquire) || site_address == 0) {
    return true;
  }
  g_sud_hits.fetch_add(1, std::memory_order_relaxed);

  HitSlot* slot = claim_slot(site_address);
  if (slot == nullptr) {
    // Probe budget exhausted (pathological site count). The syscall still
    // works via SUD — promotion just stops learning new sites.
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  const uint32_t hits = slot->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (hits >= g_config.threshold) {
    uint32_t expected = kCounting;
    if (slot->state.compare_exchange_strong(expected, kPromoting,
                                            std::memory_order_acq_rel)) {
      attempt_promotion(*slot, site_address);
    }
  }
  return true;
}

bool Promotion::is_promoted(uint64_t site_address) {
  return promoted_set_contains(site_address);
}

bool Promotion::watch_site(uint64_t site_address) {
  if (!g_active.load(std::memory_order_acquire) || site_address == 0) {
    return false;
  }
  HitSlot* slot = claim_slot(site_address);
  if (slot == nullptr) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Pre-seed to one hit below the threshold: the next live trap crosses
  // it and runs the normal validate+patch pipeline. Never lower an
  // organically higher count, and never touch a slot that already left
  // kCounting (promoted or refused — both are final).
  if (slot->state.load(std::memory_order_acquire) != kCounting) {
    return slot->state.load(std::memory_order_acquire) == kPromoted;
  }
  const uint32_t seed = g_config.threshold - 1;
  uint32_t cur = slot->hits.load(std::memory_order_relaxed);
  while (cur < seed) {
    if (slot->hits.compare_exchange_weak(cur, seed,
                                         std::memory_order_relaxed)) {
      break;
    }
  }
  g_watched.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Promotion::force_promote(uint64_t site_address) {
  if (!g_active.load(std::memory_order_acquire) || site_address == 0) {
    return false;
  }
  HitSlot* slot = claim_slot(site_address);
  if (slot == nullptr) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  uint32_t expected = kCounting;
  if (slot->state.compare_exchange_strong(expected, kPromoting,
                                          std::memory_order_acq_rel)) {
    attempt_promotion(*slot, site_address);
  }
  return slot->state.load(std::memory_order_acquire) == kPromoted;
}

PromotionStats Promotion::stats() {
  PromotionStats s;
  s.sud_hits = g_sud_hits.load(std::memory_order_relaxed);
  s.promoted = g_promoted.load(std::memory_order_relaxed);
  s.refused = g_refused.load(std::memory_order_relaxed);
  s.dropped = g_dropped.load(std::memory_order_relaxed);
  s.watched = g_watched.load(std::memory_order_relaxed);
  s.membarrier_sync_core =
      g_membarrier_sync_core.load(std::memory_order_relaxed);
  return s;
}

std::vector<uint64_t> Promotion::promoted_sites() {
  std::vector<uint64_t> sites;
  for (auto& slot : g_hit_table) {
    const uint64_t site = slot.site.load(std::memory_order_acquire);
    if (site != 0 &&
        slot.state.load(std::memory_order_acquire) == kPromoted) {
      sites.push_back(site);
    }
  }
  return sites;
}

size_t Promotion::append_to_log(OfflineLog* log) {
  auto sites = promoted_sites();
  if (sites.empty()) return 0;
  auto maps = ProcessMaps::snapshot();
  if (!maps.is_ok()) return 0;
  size_t added = 0;
  for (uint64_t site : sites) {
    if (log->add_address(maps.value(), site)) ++added;
  }
  return added;
}

void Promotion::append_events(DegradationReport* report) {
  if (g_active.load(std::memory_order_acquire) &&
      !g_membarrier_sync_core.load(std::memory_order_relaxed)) {
    report->add("promotion",
                "membarrier SYNC_CORE unavailable; relying on atomic-store "
                "validity of both encodings");
  }
  for (auto& slot : g_hit_table) {
    const uint64_t site = slot.site.load(std::memory_order_acquire);
    if (site == 0 ||
        slot.state.load(std::memory_order_acquire) != kRefused) {
      continue;
    }
    std::string detail = "promotion refused at 0x" + to_hex(site) + ": " +
                         refuse_reason_name(
                             slot.refuse_reason.load(std::memory_order_relaxed));
    const int err = slot.refuse_errno.load(std::memory_order_relaxed);
    if (err > 0) {
      detail += " (errno ";
      detail += std::to_string(err);
      detail += ")";
    }
    report->add("promotion", std::move(detail));
  }
}

}  // namespace k23
