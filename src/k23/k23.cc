#include "k23/k23.h"

#include <sys/mman.h>

#include <algorithm>
#include <atomic>

#include "arch/raw_syscall.h"
#include "common/logging.h"
#include "common/strings.h"
#include "container/robin_set.h"
#include "health/health.h"
#include "rewrite/nopatch.h"
#include "rewrite/patcher.h"
#include "seccomp/seccomp_interposer.h"
#include "sud/sud_session.h"
#include "trampoline/trampoline.h"

namespace k23 {

const char* variant_name(K23Variant variant) {
  switch (variant) {
    case K23Variant::kDefault: return "K23-default";
    case K23Variant::kUltra: return "K23-ultra";
    case K23Variant::kUltraPlus: return "K23-ultra+";
  }
  return "?";
}

namespace {

struct K23State {
  bool initialized = false;
  K23Interposer::Options options;
  AddressSet valid_sites;               // entry check (P4a) — tiny (P4b)
  std::vector<uint64_t> rewritten;      // for shutdown()
  bool sud_armed = false;
  bool seccomp_armed = false;  // irrevocable — shutdown() cannot undo it
};

K23State& state() {
  static K23State s;
  return s;
}

// Generation counter for the per-thread validator cache below. Bumped
// whenever registered sites can *shrink* (shutdown); growth (promotion)
// needs no bump because a cached positive stays correct.
std::atomic<uint64_t> g_site_epoch{1};

// Per-thread cache in front of the entry check. A hot loop enters the
// trampoline from the same handful of sites over and over; eight words of
// TLS turn the common case into a linear scan of one cache line instead
// of a RobinSet probe plus (with promotion armed) a promoted-set probe.
struct ValidatorCache {
  uint64_t epoch = 0;
  uint64_t sites[8] = {};
  uint32_t next = 0;
};
thread_local ValidatorCache t_validator_cache;

// Trampoline entry validator: lookups only, no allocation (the RobinSet
// is frozen after init; the promoted set is insert-only and lock-free),
// safe from the dispatch path.
bool robin_set_validator(uint64_t site) {
  ValidatorCache& cache = t_validator_cache;
  const uint64_t epoch = g_site_epoch.load(std::memory_order_acquire);
  if (cache.epoch == epoch) {
    for (uint64_t cached : cache.sites) {
      if (cached == site) return true;
    }
  } else {
    cache.epoch = epoch;
    for (auto& cached : cache.sites) cached = 0;
    cache.next = 0;
  }
  if (!state().valid_sites.contains(site) && !Promotion::is_promoted(site)) {
    return false;
  }
  cache.sites[cache.next] = site;
  cache.next = (cache.next + 1) & 7;
  return true;
}

// SUD pre-dispatch: the health ledger filters first — a site it owns
// (quarantined/demoted) must not feed the promotion counters, or
// promotion would try to re-patch an address the ledger just rolled
// back. MUST return true in every ledger-owned case: false means "skip
// dispatch entirely" per the SudSession contract, and the trapped
// syscall still has to execute.
bool health_promotion_pre_dispatch(uint64_t site) {
  if (!Health::note_sud_hit(site)) return true;
  if (Promotion::active()) return Promotion::note_sud_hit(site);
  return true;
}

}  // namespace

Result<K23Interposer::InitReport> K23Interposer::init(
    const OfflineLog& log, const Options& options) {
  K23State& s = state();
  if (s.initialized) return Status::fail("K23 already initialized");
  s.options = options;

  InitReport report;
  report.log_entries = log.size();

  // 1. Resolve logged (region, offset) pairs to live addresses.
  auto maps = ProcessMaps::snapshot();
  if (!maps.is_ok()) return maps.error();
  std::vector<LogEntry> unresolved;
  std::vector<uint64_t> addresses = log.resolve(maps.value(), &unresolved);
  report.unresolved_entries = unresolved.size();
  report.resolved_sites = addresses.size();
  for (const auto& entry : unresolved) {
    K23_LOG(kDebug) << "K23: log entry not mapped: " << entry.region << ","
                    << entry.offset << " (SUD fallback will cover it)";
  }

  // 2. Validate bytes at each resolved site. A stale log (library
  //    updated since the offline run) must never cause a bad rewrite:
  //    verification keeps K23's "only pre-validated sites" guarantee
  //    even when the validation data itself has rotted.
  std::vector<uint64_t> to_patch;
  std::vector<uint64_t> sysenter_sites;  // health ledger needs the encoding
  for (uint64_t address : addresses) {
    if (in_nopatch_section(address)) continue;
    const auto* bytes = reinterpret_cast<const uint8_t*>(address);
    const bool is_syscall = bytes[0] == kSyscallInsn[0] &&
                            (bytes[1] == kSyscallInsn[1] ||
                             bytes[1] == kSysenterInsn[1]);
    if (is_syscall) {
      to_patch.push_back(address);
      if (bytes[1] == kSysenterInsn[1]) sysenter_sites.push_back(address);
    } else {
      ++report.stale_entries;
      K23_LOG(kWarn) << "K23: stale log entry at " << to_hex(address)
                     << " (bytes changed since offline phase); skipping";
    }
  }

  DegradationReport& deg = report.degradation;
  const bool entry_check = options.variant != K23Variant::kDefault;

  // 3. Trampoline + the single selective rewriting step, safe mode:
  //    permission save/restore, atomic stores, serialization (P5). The
  //    rewrite is transactional — a mid-batch mprotect refusal rolls the
  //    whole batch back so the ladder never runs with half-patched text.
  //    The entry-check set must cover every candidate *before* the first
  //    byte is written: once a libc site is rewritten, the very next
  //    maps snapshot (for the next page run, or for the rollback) enters
  //    the trampoline through it. After a failed batch the set shrinks
  //    back to exactly the sites still carrying rewritten bytes.
  bool rewrite_active = false;
  if (entry_check) {
    for (uint64_t address : to_patch) s.valid_sites.insert(address);
  }
  Trampoline::Options tramp;
  tramp.validator = entry_check ? &robin_set_validator : nullptr;
  tramp.dedicated_stack = options.variant == K23Variant::kUltraPlus;
  Status tramp_st = Trampoline::install(tramp);
  if (!tramp_st.is_ok()) {
    deg.add("patcher", std::string("trampoline install failed: ") +
                           tramp_st.message());
    s.valid_sites.clear();
  } else {
    CodePatcher patcher(PatchMode::kSafe);
    PatchReport patched =
        patcher.patch_sites_transactional(to_patch, /*force=*/false);
    if (patched.committed) {
      report.rewritten_sites = patched.patched;
      s.rewritten = to_patch;
      // An empty commit (nothing resolvable/patchable) is not coverage:
      // the ladder must not count a zero-site rewrite layer as a rung.
      rewrite_active = patched.patched > 0;
    } else if (patched.residual.empty()) {
      // Clean rollback: zero rewritten bytes remain, so the trampoline
      // can come down and the exhaustive fallback carries everything.
      deg.add("patcher",
              "mid-batch patch failure, " +
                  std::to_string(patched.rolled_back) +
                  " sites rolled back; dropping to exhaustive-only");
      Trampoline::remove();
      s.valid_sites.clear();
    } else {
      // Rollback itself faulted: live `call *%rax` bytes remain. The
      // trampoline must stay installed and exactly the residual sites
      // stay registered, or the next execution of one is a wild call.
      deg.add("patcher",
              "mid-batch patch failure with " +
                  std::to_string(patched.residual.size()) +
                  " un-rollback-able sites; trampoline retained for them");
      report.rewritten_sites = patched.residual.size();
      s.rewritten = patched.residual;
      rewrite_active = true;
      if (entry_check) {
        s.valid_sites.clear();
        for (uint64_t address : s.rewritten) s.valid_sites.insert(address);
      }
    }
  }

  // 4. Exhaustive net: SUD first, seccomp when SUD is refused (P2a). K23
  //    never rewrites from these paths — they only dispatch. When the
  //    rewrite layer is down, a fallback is mandatory even if the caller
  //    disabled it: rewrite-less + fallback-less means no interposition
  //    at all, which is an error, not a tier.
  const bool need_fallback = options.sud_fallback || !rewrite_active;
  if (need_fallback && !options.sud_fallback) {
    deg.add("sud",
            "arming fallback despite sud_fallback=false: rewrite layer "
            "unavailable");
  }
  if (need_fallback) {
    SudSession::Options sud;
    sud.entry_path = EntryPath::kSudFallback;
    // Hot-site promotion rides the SUD fallback: its hit counter is the
    // pre-dispatch callback, armed *before* SUD so the first SIGSYS is
    // already counted. Gated on the trampoline being up — promotion is a
    // rewrite-tier feature; when the ladder dropped the rewrite
    // mechanism, patching from the SIGSYS path would resurrect exactly
    // what the ladder refused.
    const bool want_promotion =
        options.promotion.enabled && Trampoline::installed();
    if (want_promotion) (void)Promotion::init(options.promotion);
    // The combined callback consults the health ledger before the
    // promotion counters; both sides no-op when their subsystem is down.
    sud.pre_dispatch = &health_promotion_pre_dispatch;
    Status st = SudSession::arm(sud);
    if (st.is_ok()) {
      s.sud_armed = true;
      report.promotion_active = Promotion::active();
    } else {
      Promotion::shutdown();
      deg.add("sud", std::string("SUD arm failed: ") + st.message());
      SeccompInterposer::Options sec;
      sec.entry_path = EntryPath::kSudFallback;
      Status sec_st = SeccompInterposer::arm(sec);
      if (sec_st.is_ok()) {
        s.seccomp_armed = true;
      } else {
        deg.add("seccomp",
                std::string("seccomp arm failed: ") + sec_st.message());
        if (!rewrite_active) {
          // Bottom of the ladder: nothing is armed. Fail closed.
          s.valid_sites.clear();
          s.rewritten.clear();
          if (Trampoline::installed()) Trampoline::remove();
          deg.tier = CoverageTier::kNone;
          K23_LOG(kError) << "K23: no interposition mechanism available";
          return Status::fail("K23 init: rewrite, SUD and seccomp all "
                              "unavailable");
        }
      }
    }
  }

  // 5. Self-healing containment. Armed after the fallback so the
  //    watchdog can see whether SUD is up, and only with a live rewrite
  //    tier — the containment handler exists to demote rewritten sites,
  //    and with none there is nothing to contain. A refusal (sigaction
  //    failure) is one more rung down, not an abort.
  if (rewrite_active && options.health.enabled) {
    Status health_st = Health::init(options.health);
    if (health_st.is_ok()) {
      for (uint64_t site : s.rewritten) {
        const bool sysenter =
            std::find(sysenter_sites.begin(), sysenter_sites.end(), site) !=
            sysenter_sites.end();
        Health::register_site(site, sysenter);
      }
      report.health_active = true;
    } else {
      deg.add("health", std::string("containment handler install failed: ") +
                            health_st.message());
    }
  }

  // 6. P1b guard: abort if the application tries to turn SUD off. Only
  //    meaningful when SUD is what's armed.
  Dispatcher::instance().set_prctl_guard(options.prctl_guard &&
                                         s.sud_armed);

  if (rewrite_active) {
    deg.tier = s.sud_armed       ? CoverageTier::kRewriteAndSud
               : s.seccomp_armed ? CoverageTier::kRewriteAndSeccomp
                                 : CoverageTier::kRewriteOnly;
  } else {
    deg.tier = s.sud_armed ? CoverageTier::kSudOnly
                           : CoverageTier::kSeccompOnly;
  }
  // Requested-but-absent fallback is a documented ablation, not a step
  // down the ladder — only record it when it was *asked for* and denied,
  // which the event list above already captures.

  // Stash the report for fault-path black-box flushes: after this point
  // any contained crash can attach the init-time ladder history without
  // allocating.
  if (Health::active()) Health::note_report(deg);

  s.initialized = true;
  K23_LOG(kDebug) << variant_name(options.variant) << ": "
                  << report.rewritten_sites << " sites rewritten, "
                  << report.unresolved_entries << " unresolved, "
                  << report.stale_entries << " stale, tier "
                  << tier_name(deg.tier);
  if (deg.degraded()) K23_LOG(kWarn) << "K23 degraded:\n" << deg.summary();
  return report;
}

Result<K23Interposer::InitReport> K23Interposer::init_from_file(
    const std::string& log_path, const Options& options) {
  LogLoadReport load_report;
  auto log = OfflineLog::load(log_path, &load_report);
  if (!log.is_ok()) return log.error();
  auto report = init(log.value(), options);
  if (!report.is_ok()) return report;
  // A corrupt or torn log is a coverage loss, not a fatal error: the
  // recovered prefix was rewritten and the exhaustive net catches the
  // rest — but the operator should hear about it.
  if (load_report.corrupt_records > 0) {
    report.value().degradation.add(
        "offline-log", std::to_string(load_report.corrupt_records) +
                           " corrupt records dropped from " + log_path);
  }
  if (load_report.torn_tail) {
    report.value().degradation.add(
        "offline-log", "torn tail detected in " + log_path + "; " +
                           std::to_string(load_report.recovered) +
                           " records recovered");
  }
  return report;
}

bool K23Interposer::initialized() { return state().initialized; }

void K23Interposer::shutdown() {
  K23State& s = state();
  if (!s.initialized) return;
  Dispatcher::instance().set_prctl_guard(false);
  // Containment comes down first: a fault between here and the last
  // unpatch must die normally, not quarantine against a dying ledger.
  Health::shutdown();
  if (s.sud_armed) SudSession::disarm();
  // After SUD is down no new hits can arrive; restore promoted sites'
  // original bytes while the trampoline is still installed, then drop
  // the per-thread validator caches that may hold them.
  Promotion::shutdown();
  g_site_epoch.fetch_add(1, std::memory_order_acq_rel);
  if (s.seccomp_armed) {
    // Irrevocable by design — the filter outlives shutdown(). Tests that
    // arm seccomp must do so in a forked child.
    K23_LOG(kDebug) << "K23: seccomp filter remains armed (irrevocable)";
  }
  CodePatcher patcher(PatchMode::kSafe);
  for (uint64_t address : s.rewritten) {
    (void)patcher.unpatch_site(address);
  }
  s.rewritten.clear();
  if (Trampoline::installed()) Trampoline::remove();
  s.valid_sites.clear();
  s.sud_armed = false;
  s.seccomp_armed = false;
  s.initialized = false;
}

K23Interposer::ChildReinitReport K23Interposer::atfork_child_reinit() {
  ChildReinitReport r;
  K23State& s = state();
  if (!s.initialized) return r;

  // 1. Re-arm SUD. fork does not preserve the dispatch config, and the
  //    child has exactly one thread — the forking one — so one prctl
  //    restores the exhaustive net. A refusal (EAGAIN under fork-storm
  //    pressure, or an injected prctl_sud fault) steps the child down the
  //    ladder to rewritten-sites-only coverage; it must not abort.
  if (s.sud_armed) {
    Status st = SudSession::rearm_current_thread();
    if (st.is_ok()) {
      r.sud_rearmed = true;
    } else {
      s.sud_armed = false;
      // A prctl guard without SUD underneath guards nothing; leaving it
      // on would abort the child on its own (now harmless) prctl calls.
      Dispatcher::instance().set_prctl_guard(false);
      r.events.add("sud",
                   std::string("post-fork SUD re-arm refused: ") +
                       st.message() +
                       "; child coverage is rewritten sites only");
    }
  }

  // 2. Re-validate the rewritten sites against the child's own maps. The
  //    text pages are shared COW so the patches normally survive, but a
  //    parent-side munmap/dlclose between init and fork (or a hostile
  //    remap) would leave the entry check vouching for addresses that no
  //    longer hold our `call *%rax` — prune those rather than trust them.
  if (!s.rewritten.empty()) {
    std::vector<uint64_t> surviving;
    surviving.reserve(s.rewritten.size());
    for (uint64_t site : s.rewritten) {
      RegionProbe probe;
      const bool live = query_address_region_noalloc(site, &probe) &&
                        (probe.prot & PROT_EXEC) != 0;
      if (live) {
        surviving.push_back(site);
      } else {
        ++r.lost_sites;
      }
    }
    r.revalidated_sites = surviving.size();
    if (r.lost_sites > 0) {
      s.rewritten = std::move(surviving);
      const bool entry_check = s.options.variant != K23Variant::kDefault;
      if (entry_check) {
        s.valid_sites.clear();
        for (uint64_t site : s.rewritten) s.valid_sites.insert(site);
      }
      // The registered-site set shrank: invalidate per-thread validator
      // caches exactly like shutdown() does.
      g_site_epoch.fetch_add(1, std::memory_order_acq_rel);
      r.events.add("patcher",
                   std::to_string(r.lost_sites) +
                       " rewritten sites no longer executable in forked "
                       "child; dropped from the entry check");
    }
  }
  return r;
}

uint64_t K23Interposer::entry_check_memory_bytes() {
  return state().valid_sites.memory_bytes();
}

const K23Interposer::Options& K23Interposer::options() {
  return state().options;
}

}  // namespace k23
