#include "k23/k23.h"

#include "arch/raw_syscall.h"
#include "common/logging.h"
#include "common/strings.h"
#include "container/robin_set.h"
#include "rewrite/nopatch.h"
#include "rewrite/patcher.h"
#include "sud/sud_session.h"
#include "trampoline/trampoline.h"

namespace k23 {

const char* variant_name(K23Variant variant) {
  switch (variant) {
    case K23Variant::kDefault: return "K23-default";
    case K23Variant::kUltra: return "K23-ultra";
    case K23Variant::kUltraPlus: return "K23-ultra+";
  }
  return "?";
}

namespace {

struct K23State {
  bool initialized = false;
  K23Interposer::Options options;
  AddressSet valid_sites;               // entry check (P4a) — tiny (P4b)
  std::vector<uint64_t> rewritten;      // for shutdown()
};

K23State& state() {
  static K23State s;
  return s;
}

// Trampoline entry validator: lookups only, no allocation (the set is
// frozen after init), safe from the dispatch path.
bool robin_set_validator(uint64_t site) {
  return state().valid_sites.contains(site);
}

}  // namespace

Result<K23Interposer::InitReport> K23Interposer::init(
    const OfflineLog& log, const Options& options) {
  K23State& s = state();
  if (s.initialized) return Status::fail("K23 already initialized");
  s.options = options;

  InitReport report;
  report.log_entries = log.size();

  // 1. Resolve logged (region, offset) pairs to live addresses.
  auto maps = ProcessMaps::snapshot();
  if (!maps.is_ok()) return maps.error();
  std::vector<LogEntry> unresolved;
  std::vector<uint64_t> addresses = log.resolve(maps.value(), &unresolved);
  report.unresolved_entries = unresolved.size();
  report.resolved_sites = addresses.size();
  for (const auto& entry : unresolved) {
    K23_LOG(kDebug) << "K23: log entry not mapped: " << entry.region << ","
                    << entry.offset << " (SUD fallback will cover it)";
  }

  // 2. Validate bytes at each resolved site. A stale log (library
  //    updated since the offline run) must never cause a bad rewrite:
  //    verification keeps K23's "only pre-validated sites" guarantee
  //    even when the validation data itself has rotted.
  std::vector<uint64_t> to_patch;
  for (uint64_t address : addresses) {
    if (in_nopatch_section(address)) continue;
    const auto* bytes = reinterpret_cast<const uint8_t*>(address);
    const bool is_syscall = bytes[0] == kSyscallInsn[0] &&
                            (bytes[1] == kSyscallInsn[1] ||
                             bytes[1] == kSysenterInsn[1]);
    if (is_syscall) {
      to_patch.push_back(address);
    } else {
      ++report.stale_entries;
      K23_LOG(kWarn) << "K23: stale log entry at " << to_hex(address)
                     << " (bytes changed since offline phase); skipping";
    }
  }

  // 3. Entry-check set (ultra variants): bounded by the offline log —
  //    tens of entries (Table 2) vs zpoline's 16 TiB bitmap reservation.
  const bool entry_check = options.variant != K23Variant::kDefault;
  if (entry_check) {
    for (uint64_t address : to_patch) s.valid_sites.insert(address);
  }

  // 4. Trampoline.
  Trampoline::Options tramp;
  tramp.validator = entry_check ? &robin_set_validator : nullptr;
  tramp.dedicated_stack = options.variant == K23Variant::kUltraPlus;
  K23_RETURN_IF_ERROR(Trampoline::install(tramp));

  // 5. The single selective rewriting step, safe mode: permission
  //    save/restore, atomic stores, serialization (P5).
  CodePatcher patcher(PatchMode::kSafe);
  auto patch_report = patcher.patch_sites(to_patch, /*force=*/false);
  if (!patch_report.is_ok()) {
    Trampoline::remove();
    return patch_report.error();
  }
  report.rewritten_sites = patch_report.value().patched;
  s.rewritten = to_patch;

  // 6. SUD fallback for everything the offline phase missed (P2a). K23
  //    never rewrites from this path — it only dispatches.
  if (options.sud_fallback) {
    SudSession::Options sud;
    sud.entry_path = EntryPath::kSudFallback;
    Status st = SudSession::arm(sud);
    if (!st.is_ok()) {
      Trampoline::remove();
      return st;
    }
  }

  // 7. P1b guard: abort if the application tries to turn SUD off.
  Dispatcher::instance().set_prctl_guard(options.prctl_guard &&
                                         options.sud_fallback);

  s.initialized = true;
  K23_LOG(kDebug) << variant_name(options.variant) << ": "
                  << report.rewritten_sites << " sites rewritten, "
                  << report.unresolved_entries << " unresolved, "
                  << report.stale_entries << " stale";
  return report;
}

Result<K23Interposer::InitReport> K23Interposer::init_from_file(
    const std::string& log_path, const Options& options) {
  auto log = OfflineLog::load(log_path);
  if (!log.is_ok()) return log.error();
  return init(log.value(), options);
}

bool K23Interposer::initialized() { return state().initialized; }

void K23Interposer::shutdown() {
  K23State& s = state();
  if (!s.initialized) return;
  Dispatcher::instance().set_prctl_guard(false);
  if (s.options.sud_fallback) SudSession::disarm();
  CodePatcher patcher(PatchMode::kSafe);
  for (uint64_t address : s.rewritten) {
    (void)patcher.unpatch_site(address);
  }
  s.rewritten.clear();
  Trampoline::remove();
  s.valid_sites.clear();
  s.initialized = false;
}

uint64_t K23Interposer::entry_check_memory_bytes() {
  return state().valid_sites.memory_bytes();
}

const K23Interposer::Options& K23Interposer::options() {
  return state().options;
}

}  // namespace k23
