// Online hot-site promotion for the K23 SUD fallback.
//
// K23's exhaustive SUD net makes every syscall site the offline log
// missed pay a full SIGSYS round-trip — orders of magnitude more than a
// rewritten `call *%rax` site (paper Table 5) — and in the paper's design
// it pays that price forever. This subsystem closes the gap at runtime:
//
//   1. every SUD-fallback hit bumps a per-site counter in a lock-free,
//      cache-line-sharded hit table (async-signal-safe; no allocation);
//   2. when a site crosses the promotion threshold, the thread that
//      crossed it claims the site (CAS on a per-site state machine) and
//      validates it with the *same* predicate the startup rewrite uses:
//      not in the k23_nopatch section, both bytes within one cache line
//      (an atomic 16-bit store must be possible while other threads
//      run), region file-backed + r-x + non-writable (no-allocation
//      procmaps walk), and the bytes decode as syscall/sysenter;
//   3. the site is registered with the trampoline entry check *first*,
//      then patched with the signal-safe transactional sequence (atomic
//      two-byte store, cpuid serialize, membarrier
//      PRIVATE_EXPEDITED_SYNC_CORE to serialize every other core's
//      pipeline; if membarrier is unavailable the atomic store still
//      guarantees each CPU fetches either the old or the new — both
//      valid — encoding, exactly the startup rewriter's P5 discipline);
//   4. promoted sites are appended to the offline log at exit
//      (crash-atomic v2 save) so the next run starts hot.
//
// Why this is NOT lazypoline's P3b hazard: lazypoline rewrites whatever
// address trapped, including executed *data*. Promotion only ever patches
// bytes that pass the decoder + region predicate, a failed step refuses
// the site permanently (it simply keeps dispatching via SUD — recorded as
// a DegradationReport event, never a torn patch), promotion never runs
// below the rewrite tier of the degradation ladder, and K23_PROMOTE=off
// restores the paper's exact never-rewrite-from-SIGSYS semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "k23/degradation.h"
#include "k23/offline_log.h"

namespace k23 {

struct PromotionConfig {
  bool enabled = true;
  // SUD hits at one site before it is promoted. Low values promote cold
  // sites (wasting patch work + log entries); high values leave hot sites
  // on the trap path longer. 64 amortizes the one-time patch cost to
  // noise against the per-hit SIGSYS round-trip.
  uint32_t threshold = 64;
  // Upper bound on promoted sites per process (table capacity).
  uint32_t max_sites = 256;

  // Parses K23_PROMOTE (off|0|false disables; anything else enables),
  // K23_PROMOTE_THRESHOLD (decimal, >= 1) and K23_PROMOTE_MAX_SITES.
  static PromotionConfig from_env();
};

struct PromotionStats {
  uint64_t sud_hits = 0;        // fallback hits counted
  uint64_t promoted = 0;        // sites successfully rewritten online
  uint64_t refused = 0;         // sites that failed the predicate/patch
  uint64_t dropped = 0;         // hits not counted (hit table full)
  uint64_t watched = 0;         // sites pre-seeded to promote on first hit
  bool membarrier_sync_core = false;  // EXPEDITED_SYNC_CORE available
};

class Promotion {
 public:
  // Arms the subsystem (registers the membarrier intent, clears tables).
  // Normal context only; K23 init calls this before arming SUD, and only
  // when the rewrite tier (trampoline) is actually up.
  static Status init(const PromotionConfig& config);

  // Restores original bytes at every promoted site and disarms. Safe to
  // call with threads quiesced (tests / interposer shutdown).
  static void shutdown();

  static bool active();

  // SUD pre-dispatch notification. Async-signal-safe: counting is
  // lock-free, and a threshold crossing runs the whole validate+patch
  // pipeline with signal-safe primitives only. Always returns true —
  // the current occurrence still dispatches through SUD regardless of
  // the promotion outcome.
  static bool note_sud_hit(uint64_t site_address);

  // Lock-free membership test for the trampoline entry validator.
  static bool is_promoted(uint64_t site_address);

  // SUD-watch tier (static discovery, k23/static_discovery.h): pre-seeds
  // the hit table so the FIRST SUD hit at `site_address` crosses the
  // promotion threshold. A statically discovered site the offline log
  // cannot vouch for is not patched blind — its first live trap is the
  // confirmation that the bytes really are a reachable syscall, and the
  // existing validate+patch pipeline promotes it right then. Normal
  // context only. Returns false when promotion is inactive or the hit
  // table cannot take the site.
  static bool watch_site(uint64_t site_address);

  // Runs the full validation predicate + transactional patch on
  // `site_address` immediately (normal context; K23_STATIC=strict and
  // late-module eager promotion). Exactly the threshold-crossing path,
  // minus the wait for a hit. Returns true when the site ends up
  // promoted (including already-promoted).
  static bool force_promote(uint64_t site_address);

  static PromotionStats stats();
  static std::vector<uint64_t> promoted_sites();

  // Appends every promoted site (resolved to region,offset against a
  // fresh maps snapshot) to `log`; returns how many were added.
  static size_t append_to_log(OfflineLog* log);

  // Adds one DegradationEvent per refused promotion (and one for a
  // missing membarrier) to `report` — the operator-visible record that a
  // site stayed on the SUD path on purpose.
  static void append_events(DegradationReport* report);
};

}  // namespace k23
