#include "k23/degradation.h"

namespace k23 {

const char* tier_name(CoverageTier tier) {
  switch (tier) {
    case CoverageTier::kRewriteAndSud: return "rewrite+sud";
    case CoverageTier::kRewriteAndSeccomp: return "rewrite+seccomp";
    case CoverageTier::kRewriteOnly: return "rewrite-only";
    case CoverageTier::kSudOnly: return "sud-only";
    case CoverageTier::kSeccompOnly: return "seccomp-only";
    case CoverageTier::kNone: return "none";
  }
  return "?";
}

std::string DegradationReport::summary() const {
  std::string out = "coverage tier: ";
  out += tier_name(tier);
  out += '\n';
  for (const auto& event : events) {
    out += "  degraded [";
    out += event.component;
    out += "]: ";
    out += event.detail;
    out += '\n';
  }
  return out;
}

}  // namespace k23
