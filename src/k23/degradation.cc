#include "k23/degradation.h"

#include <sys/syscall.h>

#include "arch/raw_syscall.h"
#include "common/asformat.h"

namespace k23 {

const char* tier_name(CoverageTier tier) {
  switch (tier) {
    case CoverageTier::kRewriteAndSud: return "rewrite+sud";
    case CoverageTier::kRewriteAndSeccomp: return "rewrite+seccomp";
    case CoverageTier::kRewriteOnly: return "rewrite-only";
    case CoverageTier::kSudOnly: return "sud-only";
    case CoverageTier::kSeccompOnly: return "seccomp-only";
    case CoverageTier::kNone: return "none";
  }
  return "?";
}

size_t DegradationReport::preformat(char* buf, size_t cap) const {
  AsBuf out(buf, cap);
  const long pid = raw_syscall(SYS_getpid);
  out.append("deg ");
  out.append_i64(pid);
  out.append(" tier=");
  out.append(tier_name(tier));
  out.append(" events=");
  out.append_u64(events.size());
  out.append_char('\n');
  for (const auto& event : events) {
    out.append("deg ");
    out.append_i64(pid);
    out.append(" [");
    out.append(event.component);
    out.append("] ");
    // c_str() only reads the string already built in normal context.
    out.append_view(event.detail.c_str(), event.detail.size());
    out.append_char('\n');
  }
  return out.len;
}

bool dump_preformatted(int fd, const char* buf, size_t len) {
  if (buf == nullptr || len == 0) return false;
  const long written = raw_syscall(SYS_write, fd,
                                   reinterpret_cast<long>(buf),
                                   static_cast<long>(len));
  return written == static_cast<long>(len);
}

std::string DegradationReport::summary() const {
  std::string out = "coverage tier: ";
  out += tier_name(tier);
  out += '\n';
  for (const auto& event : events) {
    out += "  degraded [";
    out += event.component;
    out += "]: ";
    out += event.detail;
    out += '\n';
  }
  return out;
}

}  // namespace k23
