#include "k23/offline_log.h"

#include <sys/stat.h>

#include <algorithm>

#include "common/crc32.h"
#include "common/files.h"
#include "common/strings.h"

namespace k23 {
namespace {

constexpr std::string_view kHeaderPrefix = "# k23-offline-log v";
constexpr int kCurrentVersion = 2;

std::string crc_hex8(uint32_t crc) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[crc & 0xf];
    crc >>= 4;
  }
  return out;
}

bool parse_hex32(std::string_view text, uint32_t* out) {
  if (text.size() != 8) return false;
  uint32_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
    else return false;
  }
  *out = value;
  return true;
}

// Parses one "region,offset" payload (the v1 record / v2 record prefix).
bool parse_payload(std::string_view payload, std::string* region,
                   uint64_t* offset) {
  // The pathname may itself contain commas; the offset is everything
  // after the *last* comma.
  const size_t comma = payload.rfind(',');
  if (comma == std::string_view::npos || comma == 0) return false;
  auto parsed = parse_u64(payload.substr(comma + 1));
  if (!parsed) return false;
  *region = std::string(payload.substr(0, comma));
  *offset = *parsed;
  return true;
}

}  // namespace

bool OfflineLog::add(const std::string& region, uint64_t offset) {
  return entries_.insert(LogEntry{region, offset}).second;
}

bool OfflineLog::add_address(const ProcessMaps& maps, uint64_t address) {
  const MemoryRegion* region = maps.find(address);
  if (region == nullptr) return false;
  // Only "expected executable and non-writable regions" (paper §5.1).
  if (!region->executable || region->writable || !region->is_file_backed()) {
    return false;
  }
  return add(region->pathname,
             region->file_offset + (address - region->start));
}

std::vector<std::string> OfflineLog::regions() const {
  std::vector<std::string> out;
  std::set<std::string_view> seen;
  for (const auto& entry : entries_) {
    if (seen.insert(entry.region).second) out.push_back(entry.region);
  }
  return out;
}

void OfflineLog::merge(const OfflineLog& other) {
  entries_.insert(other.entries_.begin(), other.entries_.end());
}

std::string OfflineLog::serialize() const {
  std::string out = std::string(kHeaderPrefix) +
                    std::to_string(kCurrentVersion) +
                    " n=" + std::to_string(entries_.size()) + "\n";
  for (const auto& entry : entries_) {
    std::string payload = entry.region;
    payload += ',';
    payload += std::to_string(entry.offset);
    out += payload;
    out += ',';
    out += crc_hex8(crc32(payload));
    out += '\n';
  }
  return out;
}

std::string OfflineLog::serialize_v1() const {
  std::string out;
  for (const auto& entry : entries_) {
    out += entry.region;
    out += ',';
    out += std::to_string(entry.offset);
    out += '\n';
  }
  return out;
}

Result<OfflineLog> OfflineLog::deserialize(const std::string& text,
                                           LogLoadReport* report) {
  LogLoadReport local;
  LogLoadReport& rep = report != nullptr ? *report : local;
  rep = LogLoadReport{};

  // Header sniff: only a leading "# k23-offline-log v<N>" line switches
  // the parser off the strict Figure-3 path.
  int version = 1;
  size_t declared = std::string::npos;  // npos: header absent / no n=
  size_t body_start = 0;
  if (text.compare(0, kHeaderPrefix.size(), kHeaderPrefix) == 0) {
    const size_t eol = text.find('\n');
    std::string_view header(text.data(), eol == std::string::npos
                                             ? text.size()
                                             : eol);
    auto v = parse_u64(trim(header.substr(kHeaderPrefix.size(),
                                          header.find(' ', kHeaderPrefix.size()) -
                                              kHeaderPrefix.size())));
    if (!v) return Status::fail("malformed offline log header version");
    version = static_cast<int>(*v);
    if (version > kCurrentVersion) {
      return Status::fail("offline log version newer than this build");
    }
    const size_t n_pos = header.find("n=");
    if (n_pos != std::string_view::npos) {
      auto n = parse_u64(trim(header.substr(n_pos + 2)));
      if (!n) return Status::fail("malformed offline log header count");
      declared = *n;
    }
    body_start = eol == std::string::npos ? text.size() : eol + 1;
  }
  rep.version = version;

  OfflineLog log;
  const std::string_view body(text.data() + body_start,
                              text.size() - body_start);
  const bool ends_with_newline = body.empty() || body.back() == '\n';

  // Find the last non-empty line so a corrupt final record without a
  // trailing newline can be classified as a torn tail, not random damage.
  std::vector<std::string_view> lines = split(body, '\n');
  size_t last_content = std::string::npos;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!trim(lines[i]).empty()) last_content = i;
  }

  for (size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = trim(lines[i]);
    if (line.empty() || line[0] == '#') continue;

    std::string region;
    uint64_t offset = 0;
    bool ok = false;
    const char* why = "malformed record";
    if (version == 1) {
      ok = parse_payload(line, &region, &offset);
      if (!ok) {
        // Figure-3 files keep the original strict contract: v1 carries
        // no integrity data, so a bad line means the file is not a log.
        return Status::fail("malformed offline log line");
      }
    } else {
      const size_t comma = line.rfind(',');
      uint32_t stored = 0;
      if (comma == std::string_view::npos ||
          !parse_hex32(line.substr(comma + 1), &stored)) {
        why = "record lacks an 8-hex-digit CRC field";
      } else if (crc32(line.substr(0, comma)) != stored) {
        why = "CRC mismatch";
      } else {
        ok = parse_payload(line.substr(0, comma), &region, &offset);
      }
    }

    if (!ok) {
      ++rep.corrupt_records;
      rep.issues.push_back("record " + std::to_string(i + 1) + ": " + why);
      if (i == last_content && !ends_with_newline) rep.torn_tail = true;
      continue;
    }
    log.add(region, offset);
    ++rep.recovered;
  }

  if (declared != std::string::npos && rep.recovered < declared) {
    rep.torn_tail = true;
    rep.issues.push_back("header declares " + std::to_string(declared) +
                         " records, only " + std::to_string(rep.recovered) +
                         " recovered (truncated tail?)");
  }
  return log;
}

Status OfflineLog::save(const std::string& path) const {
  return write_file_atomic(path, serialize());
}

Result<OfflineLog> OfflineLog::load(const std::string& path,
                                    LogLoadReport* report) {
  auto contents = read_file(path);
  if (!contents.is_ok()) return contents.error();
  return deserialize(contents.value(), report);
}

Status OfflineLog::save_immutable(const std::string& path) const {
  K23_RETURN_IF_ERROR(save(path));
  return make_read_only(path);
}

std::string log_shard_path(const std::string& base, pid_t pid) {
  return base + "." + std::to_string(pid) + ".shard";
}

std::vector<std::string> discover_log_shards(const std::string& base) {
  const size_t slash = base.rfind('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : base.substr(0, slash);
  const std::string stem =
      slash == std::string::npos ? base : base.substr(slash + 1);
  const std::string prefix = stem + ".";
  constexpr std::string_view kSuffix = ".shard";

  std::vector<std::string> shards;
  auto names = list_dir(dir);
  if (!names.is_ok()) return shards;
  for (const std::string& name : names.value()) {
    if (name.size() <= prefix.size() + kSuffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    // The middle component must be a bare PID — "<stem>.123.extra.shard"
    // or a renamed backup must not be swept into a merge.
    const std::string_view middle(name.data() + prefix.size(),
                                  name.size() - prefix.size() -
                                      kSuffix.size());
    if (middle.empty() || !parse_u64(middle)) continue;
    shards.push_back(dir + "/" + name);
  }
  return shards;
}

Result<OfflineLog> load_merged_shards(const std::string& base,
                                      LogLoadReport* report) {
  LogLoadReport local;
  LogLoadReport& rep = report != nullptr ? *report : local;
  rep = LogLoadReport{};

  OfflineLog merged;
  std::vector<std::string> inputs;
  if (file_exists(base)) inputs.push_back(base);
  for (auto& shard : discover_log_shards(base)) {
    inputs.push_back(std::move(shard));
  }
  for (const std::string& path : inputs) {
    LogLoadReport one;
    auto log = OfflineLog::load(path, &one);
    if (!log.is_ok()) {
      // A shard that cannot be read at all (unreadable, future version)
      // is a coverage loss for that one process, not a failed merge.
      ++rep.corrupt_records;
      rep.issues.push_back(path + ": " + log.message());
      continue;
    }
    merged.merge(log.value());
    rep.recovered += one.recovered;
    rep.corrupt_records += one.corrupt_records;
    rep.torn_tail = rep.torn_tail || one.torn_tail;
    for (const std::string& issue : one.issues) {
      rep.issues.push_back(path + ": " + issue);
    }
  }
  return merged;
}

std::vector<uint64_t> OfflineLog::resolve(
    const ProcessMaps& maps, std::vector<LogEntry>* unresolved) const {
  std::vector<uint64_t> out;
  for (const auto& entry : entries_) {
    auto address = maps.address_of(entry.region, entry.offset);
    if (address.has_value()) {
      out.push_back(*address);
    } else if (unresolved != nullptr) {
      unresolved->push_back(entry);
    }
  }
  return out;
}

}  // namespace k23
