#include "k23/offline_log.h"

#include <sys/stat.h>

#include <algorithm>

#include "common/files.h"
#include "common/strings.h"

namespace k23 {

bool OfflineLog::add(const std::string& region, uint64_t offset) {
  return entries_.insert(LogEntry{region, offset}).second;
}

bool OfflineLog::add_address(const ProcessMaps& maps, uint64_t address) {
  const MemoryRegion* region = maps.find(address);
  if (region == nullptr) return false;
  // Only "expected executable and non-writable regions" (paper §5.1).
  if (!region->executable || region->writable || !region->is_file_backed()) {
    return false;
  }
  return add(region->pathname,
             region->file_offset + (address - region->start));
}

std::vector<std::string> OfflineLog::regions() const {
  std::vector<std::string> out;
  for (const auto& entry : entries_) {
    if (out.empty() || out.back() != entry.region) {
      if (std::find(out.begin(), out.end(), entry.region) == out.end()) {
        out.push_back(entry.region);
      }
    }
  }
  return out;
}

void OfflineLog::merge(const OfflineLog& other) {
  entries_.insert(other.entries_.begin(), other.entries_.end());
}

std::string OfflineLog::serialize() const {
  std::string out;
  for (const auto& entry : entries_) {
    out += entry.region;
    out += ',';
    out += std::to_string(entry.offset);
    out += '\n';
  }
  return out;
}

Result<OfflineLog> OfflineLog::deserialize(const std::string& text) {
  OfflineLog log;
  for (std::string_view line : split(text, '\n')) {
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    // The pathname may itself contain commas; the offset is everything
    // after the *last* comma.
    const size_t comma = line.rfind(',');
    if (comma == std::string_view::npos) {
      return Status::fail("malformed offline log line (no comma)");
    }
    auto offset = parse_u64(line.substr(comma + 1));
    if (!offset) return Status::fail("malformed offline log offset");
    std::string_view region = line.substr(0, comma);
    if (region.empty()) return Status::fail("empty region in offline log");
    log.add(std::string(region), *offset);
  }
  return log;
}

Status OfflineLog::save(const std::string& path) const {
  return write_file(path, serialize());
}

Result<OfflineLog> OfflineLog::load(const std::string& path) {
  auto contents = read_file(path);
  if (!contents.is_ok()) return contents.error();
  return deserialize(contents.value());
}

Status OfflineLog::save_immutable(const std::string& path) const {
  K23_RETURN_IF_ERROR(save(path));
  return make_read_only(path);
}

std::vector<uint64_t> OfflineLog::resolve(
    const ProcessMaps& maps, std::vector<LogEntry>* unresolved) const {
  std::vector<uint64_t> out;
  for (const auto& entry : entries_) {
    auto address = maps.address_of(entry.region, entry.offset);
    if (address.has_value()) {
      out.push_back(*address);
    } else if (unresolved != nullptr) {
      unresolved->push_back(entry);
    }
  }
  return out;
}

}  // namespace k23
