#include "k23/liblogger.h"

#include <atomic>
#include <memory>

#include "common/logging.h"
#include "interpose/dispatch.h"
#include "sud/sud_session.h"

namespace k23 {
namespace {

// The recording hook runs inside the SIGSYS handler; it must not allocate
// (the trapped syscall may be an mmap issued from inside malloc, and a
// handler-side malloc would deadlock). Sites are deduplicated into this
// fixed-capacity, lock-free open-addressed table; resolution to
// (region, offset) happens outside the handler at snapshot()/stop() time.
class FixedAddressTable {
 public:
  static constexpr size_t kCapacity = 1 << 16;  // Table 2 tops out at ~100

  // Returns true if `address` was newly inserted.
  bool insert(uint64_t address) {
    // 0 is the empty marker; real code never sits at address 0 or 1
    // (that's the trampoline's nop sled).
    if (address == 0) address = 1;
    size_t idx = hash(address) & (kCapacity - 1);
    for (size_t probe = 0; probe < kCapacity; ++probe) {
      uint64_t current = slots_[idx].load(std::memory_order_acquire);
      if (current == address) return false;
      if (current == 0) {
        uint64_t expected = 0;
        if (slots_[idx].compare_exchange_strong(expected, address,
                                                std::memory_order_acq_rel)) {
          count_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        if (expected == address) return false;
      }
      idx = (idx + 1) & (kCapacity - 1);
    }
    return false;  // table full: drop (bounded memory beats crashing)
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& slot : slots_) {
      uint64_t v = slot.load(std::memory_order_acquire);
      if (v != 0) fn(v);
    }
  }

  size_t count() const { return count_.load(std::memory_order_relaxed); }

  void clear() {
    for (auto& slot : slots_) slot.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  static size_t hash(uint64_t v) {
    return static_cast<size_t>((v ^ (v >> 33)) * 0x9e3779b97f4a7c15ULL);
  }

  std::atomic<uint64_t> slots_[kCapacity]{};
  std::atomic<size_t> count_{0};
};

struct LoggerState {
  bool running = false;
  HookHandle hook = 0;
  std::unique_ptr<FixedAddressTable> sites;
  std::atomic<uint64_t> observed{0};
};

LoggerState& state() {
  static LoggerState s;
  return s;
}

HookResult logging_hook(void*, SyscallArgs& args, const HookContext& ctx) {
  LoggerState& s = state();
  s.observed.fetch_add(1, std::memory_order_relaxed);
  if (ctx.site_address != 0) s.sites->insert(ctx.site_address);
  return HookResult::passthrough();
}

// Resolves the address table against a fresh maps snapshot, applying the
// §5.1 region filter (executable, non-writable, file-backed).
OfflineLog resolve_table(const FixedAddressTable& table) {
  OfflineLog log;
  auto maps = ProcessMaps::snapshot();
  if (!maps.is_ok()) {
    K23_LOG(kWarn) << "libLogger: cannot snapshot maps: " << maps.message();
    return log;
  }
  table.for_each(
      [&](uint64_t address) { log.add_address(maps.value(), address); });
  return log;
}

}  // namespace

Status LibLogger::start() {
  LoggerState& s = state();
  if (s.running) return Status::fail("libLogger already running");
  if (s.sites == nullptr) {
    s.sites = std::make_unique<FixedAddressTable>();
  } else {
    s.sites->clear();
  }
  s.observed.store(0, std::memory_order_relaxed);

  SudSession::Options sud;
  sud.entry_path = EntryPath::kOffline;
  K23_RETURN_IF_ERROR(SudSession::arm(sud));
  // The recorder rung: observe-only, so it coexists with anything an
  // embedding application registered at lower priorities.
  s.hook = Dispatcher::instance().register_hook(hook_priority::kRecorder,
                                                &logging_hook, nullptr);
  if (s.hook == 0) {
    SudSession::disarm();
    return Status::fail("libLogger: hook chain is full");
  }
  s.running = true;
  return Status::ok();
}

Result<OfflineLog> LibLogger::stop() {
  LoggerState& s = state();
  if (!s.running) return Status::fail("libLogger not running");
  Dispatcher::instance().unregister_hook(s.hook);
  s.hook = 0;
  SudSession::disarm();
  s.running = false;
  return resolve_table(*s.sites);
}

bool LibLogger::running() { return state().running; }

OfflineLog LibLogger::snapshot() {
  LoggerState& s = state();
  if (s.sites == nullptr) return OfflineLog{};
  // Resolution allocates: only safe outside the handler, which holds
  // because snapshot() is called from normal application context.
  return resolve_table(*s.sites);
}

uint64_t LibLogger::observed_syscalls() {
  return state().observed.load(std::memory_order_relaxed);
}

}  // namespace k23
