// Load-time static syscall-site discovery (K23_STATIC) — the zero-warmup
// alternative to the offline profiling phase.
//
// The paper's offline phase (§5.1) buys P3a/P3b safety by only rewriting
// sites *observed* to trap under representative inputs — at the price of a
// profiling run per deployment and a cold start whenever the log is
// missing or stale: every unlogged site pays the SIGSYS round-trip until
// hot-site promotion catches up. This subsystem removes the warmup
// without giving up the validation discipline:
//
//   1. at load time, enumerate every file-backed executable region of the
//      process (src/procmaps), parse each distinct module once
//      (src/elfio) and drive the linear-sweep decoder (src/disasm) over
//      its executable sections — segments when stripped — in a parallel
//      per-module scan (one task per DSO, bounded worker pool,
//      K23_STATIC_THREADS);
//   2. cross-validate the static site set against the offline log when
//      one exists: agreement promotes eagerly through the unchanged
//      startup rewrite (the merged set feeds K23Interposer::init as an
//      ordinary OfflineLog), static-only sites enter SUD-watch
//      (Promotion::watch_site — their first live trap confirms and
//      promotes them through the PR-2 validated pipeline, so a decoder
//      misidentification can never patch bytes that don't trap), and
//      log-only sites are surfaced as a *discovery gap* in the
//      DegradationReport (a stale or foreign log, out loud);
//   3. K23_STATIC=strict trusts the scan alone: all static sites are
//      eager, the log is only consulted for the gap report — the
//      zero-warmup configuration benchmarked by bench_coldstart;
//   4. modules mapped after startup (dlopen) are caught by a dispatcher
//      chain entry observing exec mappings (content-blind generation
//      bump — SIGSYS-safe) and a background rescan thread that scans the
//      new module and feeds its sites into watch (on) or eager
//      promotion (strict). See arm_rescan().
//
// Every eagerly rewritten site still passes the startup rewriter's byte
// validation, and every watched site the promotion predicate — static
// discovery changes *where candidate sites come from*, never what is
// patched.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "k23/offline_log.h"

namespace k23 {

enum class StaticMode {
  kOff,     // paper behavior: offline log only
  kOn,      // scan + cross-validate against the log (watch static-only)
  kStrict,  // scan is the single source of truth (all static sites eager)
};

const char* static_mode_name(StaticMode mode);

struct StaticDiscoveryConfig {
  StaticMode mode = StaticMode::kOff;
  // Worker pool width for the per-module scan. Scanning is per-DSO
  // embarrassingly parallel; 4 saturates the ELF parse + linear sweep on
  // typical module counts without stealing startup CPU from the app.
  uint32_t threads = 4;
  // Late-module rescan poll period (ms). 0 disables the rescan thread
  // (dlopen'd modules then stay on the SUD path until promotion finds
  // their hot sites organically).
  uint32_t rescan_ms = 50;

  // Parses K23_STATIC (off|on|strict), K23_STATIC_THREADS (1..64) and
  // K23_STATIC_RESCAN_MS (0 = off).
  static StaticDiscoveryConfig from_env();
};

// One scanned module (distinct file-backed executable mapping).
struct ModuleScanReport {
  std::string path;
  size_t sites = 0;            // syscall/sysenter file offsets found
  size_t decode_failures = 0;  // linear-sweep resyncs (P3a visibility)
  bool segment_fallback = false;  // stripped: scanned PT_LOAD segments
  bool failed = false;            // unreadable / unparseable module
};

struct StaticScanReport {
  // Every discovered site as (region pathname, file offset) — the same
  // coordinates the offline log uses, so downstream code cannot tell the
  // two sources apart.
  OfflineLog discovered;
  std::vector<ModuleScanReport> modules;
  size_t modules_scanned = 0;
  size_t modules_failed = 0;
  uint64_t scan_micros = 0;  // wall time of the parallel scan
};

// The cross-validation verdict (DESIGN.md §13 state machine).
struct CrossValidation {
  OfflineLog eager;            // rewritten at startup (normal init path)
  OfflineLog watch;            // SUD-watch: first hit confirms + promotes
  std::vector<LogEntry> gap;   // log-only sites the scan missed
  size_t agreed = 0;           // |static ∩ log|
};

class StaticDiscovery {
 public:
  // Parallel per-module scan of the current process image. Unreadable or
  // malformed modules degrade to per-module failure entries, never a
  // failed scan — the SUD net covers whatever was skipped.
  static Result<StaticScanReport> scan_process(
      const StaticDiscoveryConfig& config);

  // Splits the discovered set against the offline log per `mode`
  // (kOn: eager = static ∩ log, watch = static \ log, gap = log \ static;
  // kStrict: eager = static, gap = log \ static). With `have_log` false
  // every discovered site is eager — there is nothing to disagree with.
  static CrossValidation cross_validate(const StaticScanReport& scan,
                                        const OfflineLog& log, bool have_log,
                                        StaticMode mode);

  // Resolves every `watch` entry to its live address and pre-seeds the
  // promotion hit table (Promotion::watch_site). Returns sites armed;
  // 0 when promotion is inactive (sites then stay plain SUD traffic).
  static size_t arm_watch(const OfflineLog& watch);

  // --- late-module rescan (dlopen coverage) -------------------------------

  // Registers the exec-mapping observer on the dispatcher chain
  // (hook_priority::kRescan) and starts the background rescan thread.
  // The observer is SIGSYS-safe: it only compares mmap arguments and
  // bumps an atomic generation counter — the thread does the scanning in
  // normal context. The thread is NOT inherited across fork (no thread
  // is); a forked child falls back to promotion for late modules.
  static Status arm_rescan(const StaticDiscoveryConfig& config);
  static void disarm_rescan();  // unhook + join (idempotent)

  // Exec-mapping notification (called by the chain entry; exposed for
  // tests to trigger a rescan without a real dlopen).
  static void note_exec_mapping();

  struct RescanStats {
    uint64_t generations = 0;     // exec mappings observed
    uint64_t rescans = 0;         // rescan passes performed
    uint64_t modules_scanned = 0; // new modules picked up
    uint64_t sites_armed = 0;     // watched (on) or promoted (strict)
  };
  static RescanStats rescan_stats();

  // Waits until the rescan thread has drained every pending generation
  // (test/bench synchronization; returns false on `timeout_ms` expiry).
  static bool quiesce_rescan(uint32_t timeout_ms);
};

}  // namespace k23
