#include "k23/static_discovery.h"

#include <sys/mman.h>
#include <sys/syscall.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/env.h"
#include "common/logging.h"
#include "disasm/scanner.h"
#include "interpose/dispatch.h"
#include "k23/promotion.h"
#include "procmaps/procmaps.h"

namespace k23 {
namespace {

uint64_t micros_between(std::chrono::steady_clock::time_point a,
                        std::chrono::steady_clock::time_point b) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

// Modules already scanned (startup scan + every rescan pass). Gates the
// rescan thread to genuinely new mappings. Leaked on purpose: the rescan
// thread may outlive static destructors in exotic shutdown orders.
bool mark_module_scanned(const std::string& path) {
  static auto* scanned = new std::set<std::string>();
  static auto* mu = new std::mutex();
  std::lock_guard<std::mutex> lock(*mu);
  return scanned->insert(path).second;
}

// --- late-module rescan state ----------------------------------------------

std::atomic<uint64_t> g_generation{0};  // exec mappings observed
std::atomic<uint64_t> g_consumed{0};    // generation the last rescan covered
std::atomic<bool> g_rescan_stop{false};
std::atomic<bool> g_rescan_running{false};
std::atomic<uint64_t> g_stat_rescans{0};
std::atomic<uint64_t> g_stat_modules{0};
std::atomic<uint64_t> g_stat_sites{0};
HookHandle g_rescan_hook = 0;
std::thread* g_rescan_thread = nullptr;
StaticDiscoveryConfig g_rescan_config;

// Dispatcher chain entry (hook_priority::kRescan). Runs on every
// interposed syscall — possibly inside the SIGSYS handler — so it is
// content-blind: compare two registers, bump one atomic, never touch the
// pointer arguments. The rescan thread does the real work later, in
// normal context.
HookResult rescan_observe_hook(void* /*user*/, SyscallArgs& args,
                               const HookContext& /*ctx*/) {
  if (args.nr == SYS_mmap) {
    // mmap(addr, len, prot, flags, fd, off): an executable file-backed
    // mapping is how the loader brings in a dlopen'd DSO's text.
    if ((args.rdx & PROT_EXEC) != 0 && args.r8 >= 0) {
      g_generation.fetch_add(1, std::memory_order_release);
    }
  } else if (args.nr == SYS_mprotect) {
    // Some loaders map PROT_NONE and flip text executable afterwards.
    if ((args.rdx & PROT_EXEC) != 0) {
      g_generation.fetch_add(1, std::memory_order_release);
    }
  }
  return HookResult::passthrough();
}

void rescan_pass(StaticMode mode) {
  g_stat_rescans.fetch_add(1, std::memory_order_relaxed);
  auto maps = ProcessMaps::snapshot();
  if (!maps.is_ok()) return;
  for (const MemoryRegion& region :
       maps.value().executable_regions(/*file_backed_only=*/true)) {
    if (!mark_module_scanned(region.pathname)) continue;
    g_stat_modules.fetch_add(1, std::memory_order_relaxed);
    auto scanned = scan_elf(region.pathname, ScanMode::kLinearSweep);
    if (!scanned.is_ok()) {
      K23_LOG(kWarn) << "static rescan: cannot scan " << region.pathname
                     << ": " << scanned.message();
      continue;
    }
    size_t armed = 0;
    for (const SyscallSite& site : scanned.value().sites) {
      auto va = maps.value().address_of(region.pathname, site.address);
      if (!va.has_value()) continue;
      // strict: eager — validate+patch right now through the promotion
      // predicate (normal context). on: SUD-watch — first trap confirms.
      const bool ok = mode == StaticMode::kStrict
                          ? Promotion::force_promote(*va)
                          : Promotion::watch_site(*va);
      if (ok) ++armed;
    }
    g_stat_sites.fetch_add(armed, std::memory_order_relaxed);
    K23_LOG(kDebug) << "static rescan: " << region.pathname << ": "
                    << scanned.value().sites.size() << " sites, " << armed
                    << " armed";
  }
}

void rescan_thread_main() {
  const auto tick = std::chrono::milliseconds(
      g_rescan_config.rescan_ms != 0 ? g_rescan_config.rescan_ms : 50);
  uint64_t seen = g_consumed.load(std::memory_order_acquire);
  while (!g_rescan_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(tick);
    uint64_t gen = g_generation.load(std::memory_order_acquire);
    if (gen == seen) continue;
    // One dlopen is a burst of mappings; wait for the generation to hold
    // still for a full tick so the module is completely mapped before the
    // snapshot (a half-mapped DSO would be picked up minus its text).
    while (!g_rescan_stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(tick);
      const uint64_t now = g_generation.load(std::memory_order_acquire);
      if (now == gen) break;
      gen = now;
    }
    if (g_rescan_stop.load(std::memory_order_acquire)) break;
    rescan_pass(g_rescan_config.mode);
    seen = gen;
    g_consumed.store(gen, std::memory_order_release);
  }
}

}  // namespace

const char* static_mode_name(StaticMode mode) {
  switch (mode) {
    case StaticMode::kOn:     return "on";
    case StaticMode::kStrict: return "strict";
    default:                  return "off";
  }
}

StaticDiscoveryConfig StaticDiscoveryConfig::from_env() {
  StaticDiscoveryConfig config;
  const std::string mode = env_string("K23_STATIC", "off");
  if (mode == "on") {
    config.mode = StaticMode::kOn;
  } else if (mode == "strict") {
    config.mode = StaticMode::kStrict;
  } else {
    config.mode = StaticMode::kOff;  // off / unset / unrecognized
  }
  config.threads = static_cast<uint32_t>(
      env_u64("K23_STATIC_THREADS", config.threads, 1, 64));
  config.rescan_ms = static_cast<uint32_t>(
      env_u64("K23_STATIC_RESCAN_MS", config.rescan_ms, 0, 60000));
  return config;
}

Result<StaticScanReport> StaticDiscovery::scan_process(
    const StaticDiscoveryConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  auto maps = ProcessMaps::snapshot();
  if (!maps.is_ok()) return maps.error();

  // Distinct modules + the file-offset spans actually mapped executable.
  // A site the scanner finds outside every executable mapping (e.g. in a
  // section the loader never mapped) has no live address — reporting it
  // would inflate Table 2 counts against the offline log.
  struct Module {
    std::string path;
    std::vector<std::pair<uint64_t, uint64_t>> exec_spans;
  };
  std::vector<Module> modules;
  std::map<std::string, size_t> index;
  for (const MemoryRegion& region :
       maps.value().executable_regions(/*file_backed_only=*/true)) {
    auto [it, inserted] = index.try_emplace(region.pathname, modules.size());
    if (inserted) modules.push_back({region.pathname, {}});
    modules[it->second].exec_spans.emplace_back(
        region.file_offset, region.file_offset + region.size());
  }

  StaticScanReport out;
  out.modules.resize(modules.size());
  std::vector<std::vector<LogEntry>> found(modules.size());

  // One task per module, claimed off an atomic cursor by a bounded pool:
  // ELF parse + linear sweep dominate, and modules are independent, so
  // the scan parallelizes embarrassingly. Workers write only their own
  // slot of `out.modules` / `found`.
  std::atomic<size_t> cursor{0};
  auto worker = [&]() {
    for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
         i < modules.size();
         i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      const Module& module = modules[i];
      ModuleScanReport& report = out.modules[i];
      report.path = module.path;
      auto scanned = scan_elf(module.path, ScanMode::kLinearSweep);
      if (!scanned.is_ok()) {
        report.failed = true;
        continue;
      }
      report.decode_failures = scanned.value().stats.decode_failures;
      report.segment_fallback = scanned.value().stats.segment_fallback;
      for (const SyscallSite& site : scanned.value().sites) {
        for (const auto& [begin, end] : module.exec_spans) {
          if (site.address >= begin && site.address < end) {
            found[i].push_back({module.path, site.address});
            break;
          }
        }
      }
      report.sites = found[i].size();
    }
  };
  const size_t width = std::max<size_t>(
      1, std::min<size_t>(config.threads, modules.size()));
  std::vector<std::thread> pool;
  for (size_t i = 1; i < width; ++i) pool.emplace_back(worker);
  worker();  // the calling thread is pool member zero
  for (auto& t : pool) t.join();

  for (size_t i = 0; i < modules.size(); ++i) {
    mark_module_scanned(modules[i].path);  // rescan skips startup modules
    if (out.modules[i].failed) {
      ++out.modules_failed;
      continue;
    }
    ++out.modules_scanned;
    for (const LogEntry& entry : found[i]) {
      out.discovered.add(entry.region, entry.offset);
    }
  }
  out.scan_micros = micros_between(t0, std::chrono::steady_clock::now());
  return out;
}

CrossValidation StaticDiscovery::cross_validate(const StaticScanReport& scan,
                                                const OfflineLog& log,
                                                bool have_log,
                                                StaticMode mode) {
  CrossValidation out;
  if (!have_log || log.empty()) {
    // Nothing to disagree with: the scan is the only evidence there is,
    // and it feeds the same startup byte-validation every log entry gets.
    out.eager = scan.discovered;
    return out;
  }
  const auto& logged = log.entries();
  for (const LogEntry& entry : scan.discovered.entries()) {
    const bool agreed = logged.count(entry) != 0;
    if (agreed) ++out.agreed;
    if (agreed || mode == StaticMode::kStrict) {
      // Two independent sources agree (or strict trusts the scan alone):
      // rewrite at startup through the unchanged init path.
      out.eager.add(entry.region, entry.offset);
    } else {
      // Static-only: the log never saw this site trap. SUD-watch — the
      // first live hit is the confirmation the log would have provided.
      out.watch.add(entry.region, entry.offset);
    }
  }
  for (const LogEntry& entry : logged) {
    // Log-only: the profiling run saw a site the scan cannot find. A
    // stale log (module updated since profiling) or a discovery bug —
    // either way the operator hears about it (DegradationReport).
    if (scan.discovered.entries().count(entry) == 0) out.gap.push_back(entry);
  }
  return out;
}

size_t StaticDiscovery::arm_watch(const OfflineLog& watch) {
  if (watch.empty() || !Promotion::active()) return 0;
  auto maps = ProcessMaps::snapshot();
  if (!maps.is_ok()) return 0;
  size_t armed = 0;
  for (const LogEntry& entry : watch.entries()) {
    auto va = maps.value().address_of(entry.region, entry.offset);
    if (va.has_value() && Promotion::watch_site(*va)) ++armed;
  }
  return armed;
}

Status StaticDiscovery::arm_rescan(const StaticDiscoveryConfig& config) {
  if (config.rescan_ms == 0) {
    return Status::fail("rescan disabled (K23_STATIC_RESCAN_MS=0)");
  }
  disarm_rescan();
  g_rescan_config = config;
  g_rescan_hook = Dispatcher::instance().register_hook(
      hook_priority::kRescan, &rescan_observe_hook, nullptr);
  if (g_rescan_hook == 0) {
    return Status::fail("dispatcher hook chain full");
  }
  g_rescan_stop.store(false, std::memory_order_release);
  g_rescan_thread = new std::thread(&rescan_thread_main);
  g_rescan_running.store(true, std::memory_order_release);
  return Status::ok();
}

void StaticDiscovery::disarm_rescan() {
  g_rescan_stop.store(true, std::memory_order_release);
  if (g_rescan_thread != nullptr) {
    g_rescan_thread->join();
    delete g_rescan_thread;
    g_rescan_thread = nullptr;
  }
  g_rescan_running.store(false, std::memory_order_release);
  if (g_rescan_hook != 0) {
    Dispatcher::instance().unregister_hook(g_rescan_hook);
    g_rescan_hook = 0;
  }
}

void StaticDiscovery::note_exec_mapping() {
  g_generation.fetch_add(1, std::memory_order_release);
}

StaticDiscovery::RescanStats StaticDiscovery::rescan_stats() {
  RescanStats s;
  s.generations = g_generation.load(std::memory_order_relaxed);
  s.rescans = g_stat_rescans.load(std::memory_order_relaxed);
  s.modules_scanned = g_stat_modules.load(std::memory_order_relaxed);
  s.sites_armed = g_stat_sites.load(std::memory_order_relaxed);
  return s;
}

bool StaticDiscovery::quiesce_rescan(uint32_t timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const uint64_t gen = g_generation.load(std::memory_order_acquire);
    const uint64_t consumed = g_consumed.load(std::memory_order_acquire);
    if (gen == consumed) return true;
    if (!g_rescan_running.load(std::memory_order_acquire)) return false;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace k23
