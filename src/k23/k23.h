// K23 — the pitfall-resilient hybrid interposer (paper §5).
//
// Online-phase composition (Figure 4):
//   * a single, selective, zpoline-style rewrite of exactly the
//     syscall/sysenter sites validated by the offline log (P2a/P3a/P3b/P5);
//   * an SUD fallback that exhaustively catches every site the offline
//     phase missed — *without* rewriting anything from the SIGSYS path
//     (unlike lazypoline), so attack-induced misidentification cannot
//     corrupt memory (P3b);
//   * a prctl guard that aborts attempts to disable SUD (P1b);
//   * an entry check at the trampoline validating the calling site
//     against a RobinSet of the rewritten addresses — bounded memory,
//     unlike zpoline's address-space bitmap (P4a + P4b);
//   * an optional dedicated-stack switch for hook execution (-ultra+).
//
// Startup coverage (P2b: pre-load and vdso syscalls) belongs to the
// ptracer component and the k23_run launcher; see ptracer/ptracer.h and
// k23/launcher.h.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "health/health.h"
#include "k23/degradation.h"
#include "k23/offline_log.h"
#include "k23/promotion.h"

namespace k23 {

// Table 4 variants.
enum class K23Variant {
  kDefault,    // no NULL-exec check, no stack switch
  kUltra,      // + NULL-exec check (RobinSet)
  kUltraPlus,  // + NULL-exec check + dedicated-stack switch
};

const char* variant_name(K23Variant variant);

class K23Interposer {
 public:
  struct Options {
    K23Variant variant = K23Variant::kDefault;
    // Abort on application attempts to disable SUD (P1b defense).
    bool prctl_guard = true;
    // Install the SUD fallback. Disabling leaves only rewritten sites
    // interposed — used by ablation benchmarks to price the fallback.
    bool sud_fallback = true;
    // Online hot-site promotion (k23/promotion.h). Only armed when both
    // the rewrite mechanism (trampoline) and the SUD fallback are up;
    // promotion.enabled=false (K23_PROMOTE=off) restores the paper's
    // exact never-rewrite-from-SIGSYS semantics.
    PromotionConfig promotion;
    // Runtime self-healing (health/health.h): crash containment +
    // per-site quarantine + watchdog. Armed only when the rewrite tier
    // is active — with no rewritten sites there is nothing to contain.
    HealthConfig health;
  };

  struct InitReport {
    size_t log_entries = 0;
    size_t resolved_sites = 0;   // log entries currently mapped
    size_t rewritten_sites = 0;  // successfully patched
    size_t stale_entries = 0;    // resolved but bytes were not syscall
    size_t unresolved_entries = 0;
    bool promotion_active = false;  // hot-site promotion armed
    bool health_active = false;     // self-healing containment armed
    // Which rung of the ladder init actually landed on, and every step
    // down it took to get there (see k23/degradation.h). A clean init
    // reports the requested tier with no events.
    DegradationReport degradation;
  };

  // Brings up the online phase from an in-memory offline log. Init walks
  // the degradation ladder rather than failing closed: a refused rewrite
  // (mprotect failure mid-batch) rolls back and drops to SUD-only; a
  // kernel without SUD drops to seccomp-only. Only when *no* mechanism
  // can be armed does init return an error (tier kNone).
  static Result<InitReport> init(const OfflineLog& log,
                                 const Options& options);
  // Same, loading the log from disk (Figure 3 format).
  static Result<InitReport> init_from_file(const std::string& log_path,
                                           const Options& options);
  static bool initialized();
  static void shutdown();  // tests only

  // What the post-fork child re-init did (process-tree propagation,
  // DESIGN.md §9). The kernel drops SUD across fork, so a child that
  // skipped this would silently run with only the rewritten sites covered
  // — reopening exactly the coverage hole the exhaustive net exists for.
  struct ChildReinitReport {
    bool sud_rearmed = false;
    size_t revalidated_sites = 0;  // rewritten sites still live in child
    size_t lost_sites = 0;         // dropped from the entry check
    DegradationReport events;      // child-side steps down the ladder
  };

  // Re-establishes interposition in a freshly forked child: re-arms SUD
  // on the (single) surviving thread, re-validates every rewritten site
  // against the child's /proc/self/maps with the no-allocation probe, and
  // reports each refusal as a DegradationEvent instead of aborting — a
  // degraded child is a child the operator hears about, a dead worker is
  // an outage. Called from the pthread_atfork child handler registered by
  // ProcessTree::init (k23/process_tree.h); safe to call when K23 is not
  // initialized (no-op). Async-signal-safe except for event strings.
  static ChildReinitReport atfork_child_reinit();

  // Memory held by the entry-check structure (P4b comparison point:
  // RobinSet bytes vs zpoline's bitmap reservation).
  static uint64_t entry_check_memory_bytes();

  static const Options& options();
};

}  // namespace k23
