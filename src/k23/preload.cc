// libk23_preload — the plug-and-play LD_PRELOAD entry point.
//
// Injected by k23_run (or manually via LD_PRELOAD), the constructor reads
// its configuration from the environment and brings up the selected
// interposition mode before main() runs:
//
//   K23_MODE      = k23 | logger | zpoline | lazypoline | sud  (default k23)
//   K23_LOG_FILE  = offline-log path (read by k23, written by logger)
//   K23_VARIANT   = default | ultra | ultra+        (k23/zpoline modes)
//
// In k23 mode the constructor first performs the ptracer handoff (paper
// §5.3): a fake state-transfer syscall and a fake detach syscall, both
// issued through the k23_nopatch thunk so the tracer's origin check can
// verify they come from interposer code. Without a tracer the kernel
// returns ENOSYS and startup continues identically — the protocol is
// fully optional.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "accel/accel.h"
#include "accel/time_source.h"
#include "arch/raw_syscall.h"
#include "batch/batch.h"
#include "arch/syscall_table.h"
#include "arch/thunks.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/strings.h"
#include "fleet/client.h"
#include "health/blackbox.h"
#include "health/health.h"
#include "interpose/dispatch.h"
#include "k23/k23.h"
#include "k23/liblogger.h"
#include "k23/process_tree.h"
#include "k23/static_discovery.h"
#include "lazypoline/lazypoline.h"
#include "ptracer/ptracer.h"
#include "replay/replay.h"
#include "rewrite/nopatch.h"
#include "sud/sud_session.h"
#include "zpoline/zpoline.h"

namespace k23 {
namespace {

void ptracer_handoff() {
  PtracerHandoffState state{};
  long rc = k23_syscall_ret_thunk(
      kFakeSyscallStateHandoff, reinterpret_cast<long>(&state),
      sizeof(state), static_cast<long>(nopatch_begin()),
      static_cast<long>(nopatch_end()), 0, 0);
  if (rc == 0) {
    K23_LOG(kDebug) << "ptracer handoff: " << state.startup_syscall_count
                    << " startup syscalls, " << state.env_rewrites
                    << " env rewrites, " << state.vdso_scrubs
                    << " vdso scrubs";
  }  // ENOSYS: no tracer attached — standalone start.
  (void)k23_syscall_ret_thunk(kFakeSyscallDetach, 0, 0,
                              static_cast<long>(nopatch_begin()),
                              static_cast<long>(nopatch_end()), 0, 0);
}

K23Variant parse_variant(const std::string& name) {
  if (name == "ultra") return K23Variant::kUltra;
  if (name == "ultra+") return K23Variant::kUltraPlus;
  return K23Variant::kDefault;
}

void save_logger_output() {
  const char* base = env_raw("K23_LOG_FILE");
  if (base == nullptr || !LibLogger::running()) return;
  auto log = LibLogger::stop();
  if (!log.is_ok()) return;
  // With sharding on (K23_LOG_SHARDS=1), each process of an offline
  // worker tree saves its own PID shard — concurrent crash-atomic saves
  // of one shared file are last-writer-wins, silently dropping sites.
  const ProcessTreeConfig tree = ProcessTreeConfig::from_env();
  const std::string path =
      tree.log_shards ? log_shard_path(base, ::getpid()) : std::string(base);
  // Merge with earlier runs of the offline phase (paper §5.1: repeat
  // with different inputs to improve coverage).
  auto existing = OfflineLog::load(path);
  if (existing.is_ok()) log.value().merge(existing.value());
  if (!log.value().save(path).is_ok()) {
    K23_LOG(kError) << "libk23_preload: cannot write log to " << path;
  }
}

// Exit-time duties of k23 mode, registered with atexit once init
// succeeds: fold promoted sites back into the offline log (the next run
// rewrites them at startup — the promotion round trip), and honor
// K23_STATS (set by `k23_run --stats`) with the in-process view the
// launcher cannot see: per-path totals, the hottest syscalls on each
// path, and what promotion did.
void k23_exit_report() {
  // Buffered write payloads first: everything below reports, and a
  // report must not race bytes the application believes are on disk.
  // (The dispatcher also drains on the exit_group itself; atexit runs
  // earlier and keeps the flush ahead of the stats dump's own writes.)
  Batch::flush_all();
  // Detach the scenario engine before anything else: every duty below
  // reads /proc and the clock through interposed libc, and recording
  // (or verifying) the runtime's own exit tail would end every replay
  // of a perfectly deterministic workload in a bogus divergence — the
  // trace must cover the application, not the reporter. Counters and
  // the divergence ring survive shutdown; only the mode flag must be
  // sampled first.
  const bool was_recording = Replay::recording();
  Replay::shutdown();
  // Flush the flight recorder before anything below can fail: the exit
  // path is exactly where a wedged runtime loses its history. One
  // preformatted write, no allocation (satellite of DESIGN.md §11).
  // Replay divergences ride the same channel as health events: each one
  // is a structured record of where the live run departed from the
  // trace, reported — never a crash (DESIGN.md §15).
  if (BlackBox::active()) {
    DegradationReport report;
    report.tier = K23Interposer::initialized() ? CoverageTier::kRewriteAndSud
                                               : CoverageTier::kNone;
    Health::append_events(&report);
    if (Replay::diverged_count() > 0) {
      DivergenceEvent events[Replay::kMaxDivergences];
      const size_t n =
          Replay::divergence_events(events, Replay::kMaxDivergences);
      for (size_t i = 0; i < n; ++i) {
        const DivergenceEvent& ev = events[i];
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%s: thread %u seq %llu nr %ld "
                      "(expected %lld, got %lld)",
                      divergence_kind_name(ev.kind), ev.thread,
                      static_cast<unsigned long long>(ev.seq), ev.nr,
                      static_cast<long long>(ev.expected),
                      static_cast<long long>(ev.actual));
        report.add("replay", line);
      }
      const uint64_t total = Replay::diverged_count();
      if (total > n) {
        report.add("replay",
                   std::to_string(total - n) +
                       " further divergences beyond the event ring");
      }
    }
    if (report.degraded()) {
      char buf[8192];
      const size_t len = report.preformat(buf, sizeof(buf));
      BlackBox::flush("exit", buf, len);
    } else if (BlackBox::recorded() > 0) {
      BlackBox::flush("exit");
    }
  }

  if (ProcessTree::active()) {
    // Sharded paths: this process's promoted sites land in its own PID
    // shard, and its counters in its own stats dump — the launcher (or
    // k23_logmerge) folds them together post-mortem.
    ProcessTree::append_promoted_sites_to_log();
    if (Status st = ProcessTree::write_stats_dump(); !st.is_ok()) {
      K23_LOG(kWarn) << "libk23_preload: cannot write stats dump: "
                     << st.message();
    }
  } else if (const char* log_file = env_raw("K23_LOG_FILE");
             Promotion::active() && log_file != nullptr) {
    OfflineLog log;
    if (auto existing = OfflineLog::load(log_file); existing.is_ok()) {
      log = std::move(existing).value();
    }
    if (Promotion::append_to_log(&log) > 0 &&
        !log.save(log_file).is_ok()) {
      K23_LOG(kWarn) << "libk23_preload: cannot append promoted sites to "
                     << log_file;
    }
  }

  if (!env_flag("K23_STATS", false)) return;
  // Snapshot every number before the first fprintf: the dump's own
  // writes are interposed too, so interleaving reads with printing
  // would make the per-nr lines disagree with their path header.
  SyscallStats& stats = Dispatcher::instance().stats();
  const uint64_t grand_total = stats.total();
  static const char* kPathNames[] = {"rewritten", "sud-fallback", "ptrace",
                                     "offline"};
  constexpr size_t kPaths = static_cast<size_t>(EntryPath::kPathCount);
  uint64_t path_totals[kPaths];
  std::vector<std::pair<long, uint64_t>> path_tops[kPaths];
  for (size_t p = 0; p < kPaths; ++p) {
    const auto path = static_cast<EntryPath>(p);
    path_totals[p] = stats.by_path(path);
    if (path_totals[p] != 0) path_tops[p] = stats.top_by_nr(path, 10);
  }
  std::fprintf(stderr, "k23 stats: %llu syscalls interposed\n",
               static_cast<unsigned long long>(grand_total));
  for (size_t p = 0; p < kPaths; ++p) {
    if (path_totals[p] == 0) continue;
    std::fprintf(stderr, "  via %-12s %llu\n", kPathNames[p],
                 static_cast<unsigned long long>(path_totals[p]));
    for (const auto& [nr, nr_count] : path_tops[p]) {
      const char* name = syscall_name(nr);
      std::fprintf(stderr, "    %-24s %llu\n", name != nullptr ? name : "?",
                   static_cast<unsigned long long>(nr_count));
    }
  }
  const uint64_t accel_served = stats.by_outcome(SyscallOutcome::kAccelerated);
  if (accel_served != 0) {
    std::fprintf(stderr, "  accelerated  %llu (answered in userspace)\n",
                 static_cast<unsigned long long>(accel_served));
    for (const auto& [nr, nr_count] :
         stats.top_by_outcome(SyscallOutcome::kAccelerated, 10)) {
      const char* name = syscall_name(nr);
      std::fprintf(stderr, "    %-24s %llu\n", name != nullptr ? name : "?",
                   static_cast<unsigned long long>(nr_count));
    }
  }
  const uint64_t batched = stats.by_outcome(SyscallOutcome::kBatched);
  if (batched != 0) {
    const uint64_t flushes = stats.by_outcome(SyscallOutcome::kBatchFlush);
    std::fprintf(stderr,
                 "  batched      %llu writes into %llu flushes (%.1fx "
                 "coalescing)\n",
                 static_cast<unsigned long long>(batched),
                 static_cast<unsigned long long>(flushes),
                 flushes != 0 ? static_cast<double>(batched) /
                                    static_cast<double>(flushes)
                              : 0.0);
  }
  if (was_recording) {
    std::fprintf(stderr,
                 "  recorded     %llu nondeterministic results -> trace\n",
                 static_cast<unsigned long long>(Replay::recorded_count()));
  }
  const uint64_t replayed = stats.by_outcome(SyscallOutcome::kReplayed);
  const uint64_t diverged = stats.by_outcome(SyscallOutcome::kDiverged);
  if (replayed != 0 || diverged != 0) {
    std::fprintf(stderr,
                 "  replay       %llu served/verified, %llu diverged\n",
                 static_cast<unsigned long long>(replayed),
                 static_cast<unsigned long long>(diverged));
    for (const auto& [nr, nr_count] :
         stats.top_by_outcome(SyscallOutcome::kReplayed, 10)) {
      const char* name = syscall_name(nr);
      std::fprintf(stderr, "    %-24s %llu\n", name != nullptr ? name : "?",
                   static_cast<unsigned long long>(nr_count));
    }
  }
  const PromotionStats promo = Promotion::stats();
  std::fprintf(stderr,
               "  promotion: %llu sud hits, %llu promoted, %llu refused, "
               "%llu dropped\n",
               static_cast<unsigned long long>(promo.sud_hits),
               static_cast<unsigned long long>(promo.promoted),
               static_cast<unsigned long long>(promo.refused),
               static_cast<unsigned long long>(promo.dropped));
  for (uint64_t site : Promotion::promoted_sites()) {
    std::fprintf(stderr, "    promoted site %s\n", to_hex(site).c_str());
  }
}

__attribute__((constructor)) void k23_preload_init() {
  const std::string mode = env_string("K23_MODE", "k23");

  if (mode == "logger") {
    if (!LibLogger::start().is_ok()) {
      K23_LOG(kError) << "libk23_preload: libLogger failed to start";
    }
    std::atexit(&save_logger_output);
    return;
  }
  if (mode == "zpoline") {
    ZpolineInterposer::Options options;
    if (env_string("K23_VARIANT", "default") == "ultra") {
      options.variant = ZpolineVariant::kUltra;
    }
    auto report = ZpolineInterposer::init(options);
    if (!report.is_ok()) {
      K23_LOG(kError) << "libk23_preload: zpoline init failed: "
                      << report.message();
    }
    return;
  }
  if (mode == "lazypoline") {
    if (!LazypolineInterposer::init().is_ok()) {
      K23_LOG(kError) << "libk23_preload: lazypoline init failed";
    }
    return;
  }
  if (mode == "sud") {
    if (!SudSession::arm().is_ok()) {
      K23_LOG(kError) << "libk23_preload: SUD arm failed";
    }
    return;
  }

  // Default: full K23 online phase.
  ptracer_handoff();
  OfflineLog log;
  LogLoadReport load_report;
  bool have_log = false;
  const char* log_file = env_raw("K23_LOG_FILE");
  if (log_file != nullptr) {
    auto loaded = OfflineLog::load(log_file, &load_report);
    if (loaded.is_ok()) {
      log = std::move(loaded).value();
      have_log = true;
    } else {
      K23_LOG(kWarn) << "libk23_preload: no offline log at " << log_file
                     << " (SUD fallback will carry all traffic)";
    }
  }
  // Zero-warmup path (DESIGN.md §13): scan the process image for syscall
  // sites at load time and cross-validate against the log. The eager set
  // replaces the log on the unchanged init path below; static-only sites
  // are armed for SUD-watch after init brings promotion up.
  const StaticDiscoveryConfig static_config = StaticDiscoveryConfig::from_env();
  bool static_on = static_config.mode != StaticMode::kOff;
  StaticScanReport static_scan;
  CrossValidation xval;
  if (static_on) {
    auto scanned = StaticDiscovery::scan_process(static_config);
    if (scanned.is_ok()) {
      static_scan = std::move(scanned).value();
      xval = StaticDiscovery::cross_validate(static_scan, log, have_log,
                                             static_config.mode);
      K23_LOG(kDebug) << "libk23_preload: static discovery ("
                      << static_mode_name(static_config.mode) << "): "
                      << static_scan.discovered.size() << " sites in "
                      << static_scan.modules_scanned << " modules, "
                      << static_scan.scan_micros << "us; eager "
                      << xval.eager.size() << ", watch " << xval.watch.size()
                      << ", gap " << xval.gap.size();
    } else {
      K23_LOG(kWarn) << "libk23_preload: static discovery failed: "
                     << scanned.message() << " (offline log only)";
      static_on = false;
    }
  }
  K23Interposer::Options options;
  options.variant = parse_variant(env_string("K23_VARIANT", "default"));
  options.promotion = PromotionConfig::from_env();
  options.health = HealthConfig::from_env();
  // Black-box first: Health::init decides whether to arm the dispatch
  // probe partly from BlackBox::trace_dispatch().
  if (Status bb = BlackBox::init(BlackBox::Config::from_env()); !bb.is_ok()) {
    K23_LOG(kWarn) << "libk23_preload: black-box off: " << bb.message();
  }
  auto report = K23Interposer::init(static_on ? xval.eager : log, options);
  if (!report.is_ok()) {
    K23_LOG(kError) << "libk23_preload: K23 init failed: "
                    << report.message();
  } else {
    std::atexit(&k23_exit_report);
    // Arm process-tree propagation (DESIGN.md §9): atfork child re-init
    // plus — unless K23_FOLLOW=off — the exec shim that carries
    // LD_PRELOAD/K23_* across execve, including Listing 1's envp={NULL}.
    if (Status tree = ProcessTree::init(ProcessTreeConfig::from_env());
        !tree.is_ok()) {
      K23_LOG(kWarn) << "libk23_preload: process-tree propagation off: "
                     << tree.message();
    }
    // The clock authority (DESIGN.md §15) comes up before accel and
    // replay so both agree on the mode: a virtual clock (K23_CLOCK) must
    // exist even with accel off, and the replay pacer reads its rate.
    const ReplayConfig replay_config = ReplayConfig::from_env();
    if (const TimeSourceConfig clock = TimeSourceConfig::from_env();
        clock.virtual_clock || replay_config.mode != ReplayConfig::Mode::kOff) {
      if (Status st = TimeSource::init(clock); !st.is_ok()) {
        K23_LOG(kWarn) << "libk23_preload: time source off: " << st.message();
      }
    }
    // Userspace acceleration (DESIGN.md §10): vDSO-forwarded time calls
    // and pid/uname caches served straight from the dispatcher chain.
    // K23_ACCEL=off opts out; under a vdso-scrubbing launcher the time
    // fast paths silently fall back to passthrough.
    if (const AccelConfig accel = AccelConfig::from_env(); accel.enabled) {
      if (Status st = Accel::init(accel); !st.is_ok()) {
        K23_LOG(kWarn) << "libk23_preload: accel off: " << st.message();
      }
    }
    DegradationReport& deg = report.value().degradation;
    // Record/replay (DESIGN.md §15): opt-in via K23_RECORD / K23_REPLAY.
    // A trace that fails to open or load degrades to a plain run — the
    // scenario engine must never take the workload down with it.
    if (replay_config.mode != ReplayConfig::Mode::kOff) {
      if (Status st = Replay::init(replay_config); !st.is_ok()) {
        deg.add("replay", st.message());
        K23_LOG(kWarn) << "libk23_preload: replay off: " << st.message();
      }
    }
    // Write-side batching (DESIGN.md §12): opt-in via K23_BATCH; eligible
    // writes coalesce in per-thread rings and flush as one writev or
    // io_uring submission. Incompatible with replay: a buffered write
    // would let a verified live read observe different bytes than the
    // recording did, so determinism wins and batching stays off.
    if (const BatchConfig batch = BatchConfig::from_env(); batch.enabled) {
      if (Replay::replaying()) {
        deg.add("batch", "disabled under replay (determinism)");
      } else if (Status st = Batch::init(batch); !st.is_ok()) {
        K23_LOG(kWarn) << "libk23_preload: batch off: " << st.message();
      }
    }
    // Fleet supervision (DESIGN.md §14): opt-in via K23_FLEET. The
    // registration is synchronous and fail-fast — a missing or dead
    // supervisor (stale socket file included) costs one bounded connect
    // attempt and one degradation event, never a blocked startup; the
    // process then simply runs un-supervised.
    if (const fleet::FleetClientConfig fleet_config =
            fleet::FleetClientConfig::from_env();
        fleet_config.enabled) {
      if (Status st = fleet::FleetClient::init(fleet_config); !st.is_ok()) {
        deg.add("fleet", "unsupervised: " + st.message());
        K23_LOG(kWarn) << "libk23_preload: fleet unsupervised: "
                       << st.message();
      }
    }
    if (static_on) {
      // SUD-watch the static-only sites (first hit confirms + promotes)
      // and arm the dlopen rescan. Both need init done: watch rides the
      // promotion hit table, the rescan observer rides the dispatcher.
      const size_t watched = StaticDiscovery::arm_watch(xval.watch);
      if (watched < xval.watch.size()) {
        deg.add("static-discovery",
                std::to_string(xval.watch.size() - watched) +
                    " static-only sites not armed for SUD-watch "
                    "(promotion inactive or hit table full); they stay "
                    "plain SUD traffic");
      }
      if (!xval.gap.empty()) {
        deg.add("static-discovery",
                "discovery gap: " + std::to_string(xval.gap.size()) +
                    " offline-log sites not found by the static scan "
                    "(stale log, or module updated since profiling)");
      }
      if (static_config.rescan_ms > 0) {
        if (Status st = StaticDiscovery::arm_rescan(static_config);
            !st.is_ok()) {
          K23_LOG(kWarn) << "libk23_preload: dlopen rescan off: "
                         << st.message();
        }
      }
    }
    if (load_report.corrupt_records > 0 || load_report.torn_tail) {
      deg.add("offline-log",
              std::to_string(load_report.corrupt_records) +
                  " corrupt records, torn tail: " +
                  (load_report.torn_tail ? "yes" : "no") + "; " +
                  std::to_string(load_report.recovered) +
                  " records recovered");
    }
    if (deg.degraded()) {
      K23_LOG(kWarn) << "libk23_preload: running degraded\n"
                     << deg.summary();
    }
    K23_LOG(kDebug) << "libk23_preload: K23 online (tier "
                    << tier_name(deg.tier) << "), "
                    << report.value().rewritten_sites << " sites rewritten";
  }
}

}  // namespace
}  // namespace k23
