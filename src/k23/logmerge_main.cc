// k23_logmerge — merge offline logs from multiple runs (paper §5.1:
// "to improve coverage, we can repeat the process with different inputs,
// generating additional logs").
//
//   k23_logmerge [--immutable] -o merged.log run1.log run2.log ...
//   k23_logmerge [--immutable] -o merged.log --shards base.log
//   k23_logmerge --blackbox dump1.bb [dump2.bb ...]
//
// Plain inputs are whole logs from separate offline runs. --shards BASE
// instead folds a process tree's per-PID shard files ("BASE.<pid>.shard",
// written under K23_LOG_SHARDS=1) plus BASE itself into the output;
// per-shard corruption (a worker killed mid-save leaves a torn v2 tail)
// degrades to the recovered prefix and a printed issue, never a failed
// merge. Prints a per-input and merged summary; --immutable strips write
// permission from the output (the paper's log-integrity step).
//
// --blackbox switches to flight-recorder mode: the inputs are K23_BLACKBOX
// dumps (PID-tagged "bb <pid> ..." lines, possibly interleaved from a whole
// k23_run process tree sharing one O_APPEND file) and the output is a
// per-process summary — event counts, contained faults, and which sites
// ended up quarantined or demoted.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "k23/offline_log.h"

namespace {

struct BlackboxPidSummary {
  uint64_t events = 0;
  uint64_t faults = 0;
  uint64_t dispatches = 0;
  uint64_t descents = 0;
  std::set<std::string> quarantined;  // site -> still quarantined/demoted
  std::set<std::string> repromoted;
  std::vector<std::string> reasons;   // flush reasons, in file order
};

// Parses "site=0x..." from a bb line's tail; empty when absent.
std::string parse_site(const std::string& tail) {
  const size_t pos = tail.find("site=");
  if (pos == std::string::npos) return "";
  const size_t end = tail.find(' ', pos);
  return tail.substr(pos + 5, end == std::string::npos ? end : end - pos - 5);
}

int blackbox_summarize(const std::vector<std::string>& inputs) {
  std::map<long, BlackboxPidSummary> by_pid;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in.is_open()) {
      std::fprintf(stderr, "k23_logmerge: cannot open %s\n", path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("# k23-blackbox", 0) == 0) {
        long pid = 0;
        const size_t pid_pos = line.find("pid=");
        if (pid_pos != std::string::npos) {
          pid = std::strtol(line.c_str() + pid_pos + 4, nullptr, 10);
        }
        const size_t reason_pos = line.find("reason=");
        if (reason_pos != std::string::npos) {
          const size_t end = line.find(' ', reason_pos);
          by_pid[pid].reasons.push_back(
              line.substr(reason_pos + 7, end == std::string::npos
                                              ? end
                                              : end - reason_pos - 7));
        }
        continue;
      }
      if (line.rfind("bb ", 0) != 0) continue;  // deg lines, noise
      std::istringstream fields(line.substr(3));
      long pid = 0;
      uint64_t seq = 0, tsc = 0;
      std::string kind;
      if (!(fields >> pid >> seq >> tsc >> kind)) continue;
      std::string tail;
      std::getline(fields, tail);
      BlackboxPidSummary& s = by_pid[pid];
      ++s.events;
      const std::string site = parse_site(tail);
      if (kind == "fault") ++s.faults;
      if (kind == "dispatch") ++s.dispatches;
      if (kind == "descend") ++s.descents;
      if (kind == "quarantine" || kind == "demote") {
        s.quarantined.insert(site);
        s.repromoted.erase(site);
      }
      if (kind == "repromote") {
        s.repromoted.insert(site);
        s.quarantined.erase(site);
      }
    }
  }
  if (by_pid.empty()) {
    std::fprintf(stderr, "k23_logmerge: no blackbox records found\n");
    return 1;
  }
  for (const auto& [pid, s] : by_pid) {
    std::printf("pid %ld: %" PRIu64 " events, %" PRIu64 " faults contained, "
                "%" PRIu64 " dispatches traced, %" PRIu64 " descents\n",
                pid, s.events, s.faults, s.dispatches, s.descents);
    for (const std::string& site : s.quarantined) {
      std::printf("  quarantined %s\n", site.c_str());
    }
    for (const std::string& site : s.repromoted) {
      std::printf("  repromoted  %s\n", site.c_str());
    }
    if (!s.reasons.empty()) {
      std::printf("  flushes:");
      for (const std::string& reason : s.reasons) {
        std::printf(" %s", reason.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace k23;
  std::string output;
  std::vector<std::string> inputs;
  std::vector<std::string> shard_bases;
  bool immutable = false;
  bool blackbox = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--immutable") == 0) {
      immutable = true;
    } else if (std::strcmp(argv[i], "--blackbox") == 0) {
      blackbox = true;
    } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_bases.emplace_back(argv[++i]);
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (blackbox) {
    if (inputs.empty()) {
      std::fprintf(stderr, "usage: %s --blackbox dump1 [dump2 ...]\n",
                   argv[0]);
      return 2;
    }
    return blackbox_summarize(inputs);
  }
  if (output.empty() || (inputs.empty() && shard_bases.empty())) {
    std::fprintf(stderr,
                 "usage: %s [--immutable] -o merged.log "
                 "[run1.log ...] [--shards base.log ...] | "
                 "%s --blackbox dump1 [dump2 ...]\n",
                 argv[0], argv[0]);
    return 2;
  }

  OfflineLog merged;
  for (const std::string& path : inputs) {
    auto log = OfflineLog::load(path);
    if (!log.is_ok()) {
      std::fprintf(stderr, "k23_logmerge: %s: %s\n", path.c_str(),
                   log.message().c_str());
      return 1;
    }
    const size_t before = merged.size();
    merged.merge(log.value());
    std::printf("%-40s %6zu sites (%zu new)\n", path.c_str(),
                log.value().size(), merged.size() - before);
  }
  for (const std::string& base : shard_bases) {
    LogLoadReport report;
    auto tree = load_merged_shards(base, &report);
    if (!tree.is_ok()) {
      std::fprintf(stderr, "k23_logmerge: shards of %s: %s\n", base.c_str(),
                   tree.message().c_str());
      return 1;
    }
    const size_t shard_count = discover_log_shards(base).size();
    const size_t before = merged.size();
    merged.merge(tree.value());
    std::printf("%-40s %6zu sites (%zu new) from %zu shard%s\n",
                base.c_str(), tree.value().size(), merged.size() - before,
                shard_count, shard_count == 1 ? "" : "s");
    for (const std::string& issue : report.issues) {
      std::fprintf(stderr, "k23_logmerge: %s: %s (recovered prefix kept)\n",
                   base.c_str(), issue.c_str());
    }
  }

  Status st = immutable ? merged.save_immutable(output)
                        : merged.save(output);
  if (!st.is_ok()) {
    std::fprintf(stderr, "k23_logmerge: write %s: %s\n", output.c_str(),
                 st.message().c_str());
    return 1;
  }
  std::printf("%-40s %6zu sites across %zu regions%s\n", output.c_str(),
              merged.size(), merged.regions().size(),
              immutable ? " (read-only)" : "");
  return 0;
}
