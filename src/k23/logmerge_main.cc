// k23_logmerge — merge offline logs from multiple runs (paper §5.1:
// "to improve coverage, we can repeat the process with different inputs,
// generating additional logs").
//
//   k23_logmerge [--immutable] -o merged.log run1.log run2.log ...
//   k23_logmerge [--immutable] -o merged.log --shards base.log
//   k23_logmerge --blackbox dump1.bb [dump2.bb ...]
//   k23_logmerge --trace k23.trace [...]
//
// Plain inputs are whole logs from separate offline runs. --shards BASE
// instead folds a process tree's per-PID shard files ("BASE.<pid>.shard",
// written under K23_LOG_SHARDS=1) plus BASE itself into the output;
// per-shard corruption (a worker killed mid-save leaves a torn v2 tail)
// degrades to the recovered prefix and a printed issue, never a failed
// merge. Prints a per-input and merged summary; --immutable strips write
// permission from the output (the paper's log-integrity step).
//
// --blackbox switches to flight-recorder mode: the inputs are K23_BLACKBOX
// dumps (PID-tagged "bb <pid> ..." lines, possibly interleaved from a whole
// k23_run process tree sharing one O_APPEND file) and the output is a
// per-process summary — event counts, contained faults, and which sites
// ended up quarantined or demoted.
//
// --trace switches to replay-trace mode: the inputs are v3 traces
// (trace/trace_format.h, written by `k23_run record`) and the output is
// one line per record — thread, seq, syscall, kind, result, aux, and the
// capture timestamp relative to trace start — plus a per-kind summary.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "arch/syscall_table.h"
#include "k23/offline_log.h"
#include "trace/trace_format.h"

namespace {

struct BlackboxPidSummary {
  uint64_t events = 0;
  uint64_t faults = 0;
  uint64_t dispatches = 0;
  uint64_t descents = 0;
  std::set<std::string> quarantined;  // site -> still quarantined/demoted
  std::set<std::string> repromoted;
  std::vector<std::string> reasons;   // flush reasons, in file order
};

// Parses "site=0x..." from a bb line's tail; empty when absent.
std::string parse_site(const std::string& tail) {
  const size_t pos = tail.find("site=");
  if (pos == std::string::npos) return "";
  const size_t end = tail.find(' ', pos);
  return tail.substr(pos + 5, end == std::string::npos ? end : end - pos - 5);
}

int blackbox_summarize(const std::vector<std::string>& inputs) {
  std::map<long, BlackboxPidSummary> by_pid;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in.is_open()) {
      std::fprintf(stderr, "k23_logmerge: cannot open %s\n", path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("# k23-blackbox", 0) == 0) {
        long pid = 0;
        const size_t pid_pos = line.find("pid=");
        if (pid_pos != std::string::npos) {
          pid = std::strtol(line.c_str() + pid_pos + 4, nullptr, 10);
        }
        const size_t reason_pos = line.find("reason=");
        if (reason_pos != std::string::npos) {
          const size_t end = line.find(' ', reason_pos);
          by_pid[pid].reasons.push_back(
              line.substr(reason_pos + 7, end == std::string::npos
                                              ? end
                                              : end - reason_pos - 7));
        }
        continue;
      }
      if (line.rfind("bb ", 0) != 0) continue;  // deg lines, noise
      std::istringstream fields(line.substr(3));
      long pid = 0;
      uint64_t seq = 0, tsc = 0;
      std::string kind;
      if (!(fields >> pid >> seq >> tsc >> kind)) continue;
      std::string tail;
      std::getline(fields, tail);
      BlackboxPidSummary& s = by_pid[pid];
      ++s.events;
      const std::string site = parse_site(tail);
      if (kind == "fault") ++s.faults;
      if (kind == "dispatch") ++s.dispatches;
      if (kind == "descend") ++s.descents;
      if (kind == "quarantine" || kind == "demote") {
        s.quarantined.insert(site);
        s.repromoted.erase(site);
      }
      if (kind == "repromote") {
        s.repromoted.insert(site);
        s.quarantined.erase(site);
      }
    }
  }
  if (by_pid.empty()) {
    std::fprintf(stderr, "k23_logmerge: no blackbox records found\n");
    return 1;
  }
  for (const auto& [pid, s] : by_pid) {
    std::printf("pid %ld: %" PRIu64 " events, %" PRIu64 " faults contained, "
                "%" PRIu64 " dispatches traced, %" PRIu64 " descents\n",
                pid, s.events, s.faults, s.dispatches, s.descents);
    for (const std::string& site : s.quarantined) {
      std::printf("  quarantined %s\n", site.c_str());
    }
    for (const std::string& site : s.repromoted) {
      std::printf("  repromoted  %s\n", site.c_str());
    }
    if (!s.reasons.empty()) {
      std::printf("  flushes:");
      for (const std::string& reason : s.reasons) {
        std::printf(" %s", reason.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}

// Pretty-prints one v3 replay trace (trace_format.h). Read with plain
// ifstream: this is an offline tool, the SIGSYS rules do not apply here.
int trace_print(const std::string& path) {
  using k23::trace::RecordKind;
  using k23::trace::TraceFileHeader;
  using k23::trace::TraceRecordHeader;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "k23_logmerge: cannot open %s\n", path.c_str());
    return 1;
  }
  TraceFileHeader header;
  if (!in.read(reinterpret_cast<char*>(&header), sizeof(header))) {
    std::fprintf(stderr, "k23_logmerge: %s: shorter than a trace header\n",
                 path.c_str());
    return 1;
  }
  if (header.magic != k23::trace::kTraceMagic) {
    std::fprintf(stderr, "k23_logmerge: %s: not a K23 trace\n", path.c_str());
    return 1;
  }
  if (header.version != k23::trace::kTraceVersion) {
    std::fprintf(stderr, "k23_logmerge: %s: unsupported trace version %u\n",
                 path.c_str(), header.version);
    return 1;
  }
  std::printf("%s: v%u trace, pid %d, start realtime %" PRIu64
              " ns, monotonic %" PRIu64 " ns\n",
              path.c_str(), header.version, header.pid,
              header.start_realtime_ns, header.start_monotonic_ns);
  std::printf("  %-6s %-6s %-20s %-8s %12s %18s %12s\n", "thread", "seq",
              "syscall", "kind", "result", "aux", "t+us");
  uint64_t records = 0;
  uint64_t by_kind[8] = {};
  std::map<uint32_t, uint64_t> by_thread;
  char payload[k23::trace::kMaxRecordPayload];
  TraceRecordHeader rec;
  while (in.read(reinterpret_cast<char*>(&rec), sizeof(rec))) {
    if (rec.payload_len > k23::trace::kMaxRecordPayload ||
        (rec.payload_len != 0 && !in.read(payload, rec.payload_len))) {
      std::fprintf(stderr,
                   "k23_logmerge: %s: torn record after %" PRIu64
                   " records (prefix shown)\n",
                   path.c_str(), records);
      break;
    }
    const char* name = k23::syscall_name(rec.nr);
    const uint64_t rel_us =
        rec.monotonic_ns > header.start_monotonic_ns
            ? (rec.monotonic_ns - header.start_monotonic_ns) / 1000
            : 0;
    std::printf("  %-6u %-6" PRIu64 " %-20s %-8s %12" PRId64 " %18" PRIu64
                " %12" PRIu64 "\n",
                rec.thread, rec.seq, name != nullptr ? name : "?",
                k23::trace::record_kind_name(
                    static_cast<RecordKind>(rec.kind)),
                rec.result, rec.aux, rel_us);
    ++records;
    if (rec.kind < 8) ++by_kind[rec.kind];
    ++by_thread[rec.thread];
  }
  std::printf("%" PRIu64 " records, %zu thread stream%s", records,
              by_thread.size(), by_thread.size() == 1 ? "" : "s");
  for (int k = 0; k < 8; ++k) {
    if (by_kind[k] == 0) continue;
    std::printf(", %s %" PRIu64,
                k23::trace::record_kind_name(static_cast<RecordKind>(k)),
                by_kind[k]);
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace k23;
  std::string output;
  std::vector<std::string> inputs;
  std::vector<std::string> shard_bases;
  bool immutable = false;
  bool blackbox = false;
  bool trace = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--immutable") == 0) {
      immutable = true;
    } else if (std::strcmp(argv[i], "--blackbox") == 0) {
      blackbox = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_bases.emplace_back(argv[++i]);
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (blackbox) {
    if (inputs.empty()) {
      std::fprintf(stderr, "usage: %s --blackbox dump1 [dump2 ...]\n",
                   argv[0]);
      return 2;
    }
    return blackbox_summarize(inputs);
  }
  if (trace) {
    if (inputs.empty()) {
      std::fprintf(stderr, "usage: %s --trace k23.trace [...]\n", argv[0]);
      return 2;
    }
    int rc = 0;
    for (const std::string& path : inputs) {
      rc = trace_print(path) != 0 ? 1 : rc;
    }
    return rc;
  }
  if (output.empty() || (inputs.empty() && shard_bases.empty())) {
    std::fprintf(stderr,
                 "usage: %s [--immutable] -o merged.log "
                 "[run1.log ...] [--shards base.log ...] | "
                 "%s --blackbox dump1 [dump2 ...] | "
                 "%s --trace k23.trace [...]\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }

  OfflineLog merged;
  for (const std::string& path : inputs) {
    auto log = OfflineLog::load(path);
    if (!log.is_ok()) {
      std::fprintf(stderr, "k23_logmerge: %s: %s\n", path.c_str(),
                   log.message().c_str());
      return 1;
    }
    const size_t before = merged.size();
    merged.merge(log.value());
    std::printf("%-40s %6zu sites (%zu new)\n", path.c_str(),
                log.value().size(), merged.size() - before);
  }
  for (const std::string& base : shard_bases) {
    LogLoadReport report;
    auto tree = load_merged_shards(base, &report);
    if (!tree.is_ok()) {
      std::fprintf(stderr, "k23_logmerge: shards of %s: %s\n", base.c_str(),
                   tree.message().c_str());
      return 1;
    }
    const size_t shard_count = discover_log_shards(base).size();
    const size_t before = merged.size();
    merged.merge(tree.value());
    std::printf("%-40s %6zu sites (%zu new) from %zu shard%s\n",
                base.c_str(), tree.value().size(), merged.size() - before,
                shard_count, shard_count == 1 ? "" : "s");
    for (const std::string& issue : report.issues) {
      std::fprintf(stderr, "k23_logmerge: %s: %s (recovered prefix kept)\n",
                   base.c_str(), issue.c_str());
    }
  }

  Status st = immutable ? merged.save_immutable(output)
                        : merged.save(output);
  if (!st.is_ok()) {
    std::fprintf(stderr, "k23_logmerge: write %s: %s\n", output.c_str(),
                 st.message().c_str());
    return 1;
  }
  std::printf("%-40s %6zu sites across %zu regions%s\n", output.c_str(),
              merged.size(), merged.regions().size(),
              immutable ? " (read-only)" : "");
  return 0;
}
