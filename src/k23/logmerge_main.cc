// k23_logmerge — merge offline logs from multiple runs (paper §5.1:
// "to improve coverage, we can repeat the process with different inputs,
// generating additional logs").
//
//   k23_logmerge [--immutable] -o merged.log run1.log run2.log ...
//   k23_logmerge [--immutable] -o merged.log --shards base.log
//
// Plain inputs are whole logs from separate offline runs. --shards BASE
// instead folds a process tree's per-PID shard files ("BASE.<pid>.shard",
// written under K23_LOG_SHARDS=1) plus BASE itself into the output;
// per-shard corruption (a worker killed mid-save leaves a torn v2 tail)
// degrades to the recovered prefix and a printed issue, never a failed
// merge. Prints a per-input and merged summary; --immutable strips write
// permission from the output (the paper's log-integrity step).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "k23/offline_log.h"

int main(int argc, char** argv) {
  using namespace k23;
  std::string output;
  std::vector<std::string> inputs;
  std::vector<std::string> shard_bases;
  bool immutable = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--immutable") == 0) {
      immutable = true;
    } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_bases.emplace_back(argv[++i]);
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (output.empty() || (inputs.empty() && shard_bases.empty())) {
    std::fprintf(stderr,
                 "usage: %s [--immutable] -o merged.log "
                 "[run1.log ...] [--shards base.log ...]\n",
                 argv[0]);
    return 2;
  }

  OfflineLog merged;
  for (const std::string& path : inputs) {
    auto log = OfflineLog::load(path);
    if (!log.is_ok()) {
      std::fprintf(stderr, "k23_logmerge: %s: %s\n", path.c_str(),
                   log.message().c_str());
      return 1;
    }
    const size_t before = merged.size();
    merged.merge(log.value());
    std::printf("%-40s %6zu sites (%zu new)\n", path.c_str(),
                log.value().size(), merged.size() - before);
  }
  for (const std::string& base : shard_bases) {
    LogLoadReport report;
    auto tree = load_merged_shards(base, &report);
    if (!tree.is_ok()) {
      std::fprintf(stderr, "k23_logmerge: shards of %s: %s\n", base.c_str(),
                   tree.message().c_str());
      return 1;
    }
    const size_t shard_count = discover_log_shards(base).size();
    const size_t before = merged.size();
    merged.merge(tree.value());
    std::printf("%-40s %6zu sites (%zu new) from %zu shard%s\n",
                base.c_str(), tree.value().size(), merged.size() - before,
                shard_count, shard_count == 1 ? "" : "s");
    for (const std::string& issue : report.issues) {
      std::fprintf(stderr, "k23_logmerge: %s: %s (recovered prefix kept)\n",
                   base.c_str(), issue.c_str());
    }
  }

  Status st = immutable ? merged.save_immutable(output)
                        : merged.save(output);
  if (!st.is_ok()) {
    std::fprintf(stderr, "k23_logmerge: write %s: %s\n", output.c_str(),
                 st.message().c_str());
    return 1;
  }
  std::printf("%-40s %6zu sites across %zu regions%s\n", output.c_str(),
              merged.size(), merged.regions().size(),
              immutable ? " (read-only)" : "");
  return 0;
}
