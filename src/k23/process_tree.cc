#include "k23/process_tree.h"

#include <pthread.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>

#include "common/env.h"
#include "common/files.h"
#include "common/logging.h"
#include "common/strings.h"
#include "interpose/dispatch.h"
#include "interpose/internal.h"
#include "k23/k23.h"
#include "k23/offline_log.h"
#include "k23/promotion.h"

extern char** environ;

namespace k23 {
namespace {

constexpr const char* kPathNames[] = {"rewritten", "sud-fallback", "ptrace",
                                      "offline"};
constexpr size_t kPaths = static_cast<size_t>(EntryPath::kPathCount);
constexpr std::string_view kStatsHeader = "# k23-stats v1 pid=";
constexpr std::string_view kStatsSuffix = ".k23stats";

struct TreeState {
  bool enabled = false;
  bool atfork_registered = false;
  ProcessTreeConfig config;
  uint32_t fork_generation = 0;  // copied by fork, bumped in the child
  DegradationReport report;
};

TreeState& state() {
  // Leaked on purpose: the preload's atexit handler reads the config
  // (shard path, stats dir) after static destructors may already have
  // run, so this state must live for the whole process. A destructed
  // TreeState only *appears* to work while its strings fit in the SSO
  // buffer — longer paths dangle.
  static TreeState* s = new TreeState;
  return *s;
}

// --- exec shim --------------------------------------------------------------
//
// Everything the shim touches at exec time is snapshotted here at init:
// reading ::environ or allocating inside the shim would be unsafe when the
// execve arrives via the SIGSYS fallback path. Static, fixed-size storage;
// a tree whose environment outgrows it degrades to pass-through (logged),
// never to a torn envp.

constexpr size_t kMaxForced = 64;        // LD_PRELOAD + K23_* entries
constexpr size_t kForcedBytes = 16384;   // backing store for forced entries
constexpr size_t kMaxMergedEnv = 1024;   // total entries in the rebuilt envp
constexpr size_t kLdScratchBytes = 4096; // merged LD_PRELOAD value

char g_forced_storage[kForcedBytes];
const char* g_forced[kMaxForced];        // full "NAME=value" strings
size_t g_forced_name_len[kMaxForced];    // bytes before '='
size_t g_forced_count = 0;
size_t g_forced_ld_preload = SIZE_MAX;   // index of LD_PRELOAD in g_forced

// Rebuilt envp lives here while the execve syscall copies it. The lock is
// held across the syscall itself: exec either replaces the image (lock
// irrelevant) or fails and unlocks — so a concurrent exec on another
// thread can never observe a half-rebuilt block.
char* g_merged_env[kMaxMergedEnv + 1];
char g_ld_scratch[kLdScratchBytes];
std::atomic_flag g_exec_lock = ATOMIC_FLAG_INIT;

size_t env_name_len(const char* entry) {
  const char* eq = std::strchr(entry, '=');
  return eq != nullptr ? static_cast<size_t>(eq - entry)
                       : std::strlen(entry);
}

bool is_forced_name(const char* entry, size_t name_len) {
  if (name_len == 10 && std::strncmp(entry, "LD_PRELOAD", 10) == 0) {
    return true;
  }
  return name_len >= 4 && std::strncmp(entry, "K23_", 4) == 0;
}

// Snapshots LD_PRELOAD and every K23_* variable from the live environment
// into the static forced-entry table. Returns false when it does not fit.
bool snapshot_forced_env() {
  g_forced_count = 0;
  g_forced_ld_preload = SIZE_MAX;
  size_t used = 0;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const size_t name_len = env_name_len(*e);
    if (!is_forced_name(*e, name_len)) continue;
    const size_t bytes = std::strlen(*e) + 1;
    if (g_forced_count >= kMaxForced || used + bytes > kForcedBytes) {
      return false;
    }
    std::memcpy(g_forced_storage + used, *e, bytes);
    if (name_len == 10) g_forced_ld_preload = g_forced_count;
    g_forced[g_forced_count] = g_forced_storage + used;
    g_forced_name_len[g_forced_count] = name_len;
    ++g_forced_count;
    used += bytes;
  }
  return true;
}

long invoke_exec(const SyscallArgs& args) {
  return internal::syscall_fn()(args.nr, args.rdi, args.rsi, args.rdx,
                                args.r10, args.r8, args.r9);
}

// The dispatcher routes every interposed execve/execveat here. Rebuilds
// envp so the forced entries survive — including the `envp = {NULL}` and
// `envp = NULL` shapes of pitfall P1a — then forwards the call.
long exec_shim(const SyscallArgs& args) {
  const bool at = args.nr == SYS_execveat;
  char* const* app_envp =
      reinterpret_cast<char* const*>(at ? args.r10 : args.rdx);

  while (g_exec_lock.test_and_set(std::memory_order_acquire)) {
  }
  size_t n = 0;
  bool overflow = false;
  const char* saved_ld_entry = nullptr;  // pre-merge LD_PRELOAD, restored below

  // Application entries first (pointers into the caller's memory stay
  // valid for the duration of the syscall); entries whose name collides
  // with a forced one are replaced below, except LD_PRELOAD which merges.
  for (char* const* e = app_envp; e != nullptr && *e != nullptr; ++e) {
    const size_t name_len = env_name_len(*e);
    if (is_forced_name(*e, name_len)) {
      if (name_len == 10 && g_forced_ld_preload != SIZE_MAX) {
        // Merge: our library first, then the application's own preloads.
        const char* forced = g_forced[g_forced_ld_preload];
        const char* app_value = *e + name_len;
        if (*app_value == '=') ++app_value;
        const size_t forced_len = std::strlen(forced);
        const size_t app_len = std::strlen(app_value);
        if (app_len > 0 && forced_len + 1 + app_len + 1 <= kLdScratchBytes &&
            std::strstr(forced, app_value) == nullptr) {
          std::memcpy(g_ld_scratch, forced, forced_len);
          g_ld_scratch[forced_len] = ':';
          std::memcpy(g_ld_scratch + forced_len + 1, app_value, app_len + 1);
          saved_ld_entry = forced;
          g_forced[g_forced_ld_preload] = g_ld_scratch;
        }
      }
      continue;  // forced entry emitted below
    }
    if (n >= kMaxMergedEnv) {
      overflow = true;
      break;
    }
    g_merged_env[n++] = *e;
  }
  for (size_t i = 0; i < g_forced_count && !overflow; ++i) {
    if (n >= kMaxMergedEnv) {
      overflow = true;
      break;
    }
    g_merged_env[n++] = const_cast<char*>(g_forced[i]);
  }
  g_merged_env[n] = nullptr;

  if (overflow) {
    // Degrade to pass-through: an exec with a truncated environment is a
    // worse outcome than a child that escapes interposition and says so.
    safe_log("k23: exec env rebuild overflow; child not re-injected");
    if (saved_ld_entry != nullptr) {
      g_forced[g_forced_ld_preload] = saved_ld_entry;
    }
    g_exec_lock.clear(std::memory_order_release);
    return invoke_exec(args);
  }

  SyscallArgs forwarded = args;
  if (at) {
    forwarded.r10 = reinterpret_cast<long>(g_merged_env);
  } else {
    forwarded.rdx = reinterpret_cast<long>(g_merged_env);
  }
  long rc = invoke_exec(forwarded);  // returns only on failure
  // Restore the pre-merge LD_PRELOAD entry: g_ld_scratch is per-call.
  if (saved_ld_entry != nullptr) {
    g_forced[g_forced_ld_preload] = saved_ld_entry;
  }
  g_exec_lock.clear(std::memory_order_release);
  return rc;
}

// --- fork handler -----------------------------------------------------------

void atfork_child() {
  TreeState& s = state();
  if (!s.enabled) return;
  ++s.fork_generation;
  // Re-arm SUD / re-validate sites; every refusal lands on the child's
  // ladder instead of killing the worker. (The dispatcher's clone shim
  // usually re-armed SUD already on the way through; the re-arm here is
  // idempotent and also covers forks the dispatcher never saw — e.g. a
  // fork issued while the ladder had degraded to rewritten-only.)
  auto reinit = K23Interposer::atfork_child_reinit();
  for (auto& event : reinit.events.events) {
    s.report.events.push_back(std::move(event));
  }
  // Fresh per-process counters: this child's stats dump and log shard
  // must describe *this* process, not the ancestors it was copied from.
  Dispatcher::instance().stats().reset();
  // Invalidate accel caches (the PID cache in particular) for forks the
  // dispatcher's own fork path didn't see — e.g. a libc fork() issued
  // while the ladder had degraded to rewritten-only coverage.
  if (internal::ChildRefreshFn refresh = internal::child_refresh();
      refresh != nullptr) {
    refresh();
  }
  // Re-register with the fleet supervisor as our own worker (the
  // inherited worker segment and socket describe the parent). Ordinary
  // thread context here — the fleet client may allocate and connect.
  if (internal::FleetHookFn reregister = internal::fleet_child_reregister();
      reregister != nullptr) {
    reregister();
  }
}

}  // namespace

ProcessTreeConfig ProcessTreeConfig::from_env() {
  ProcessTreeConfig config;
  config.follow = env_flag("K23_FOLLOW", config.follow);
  config.log_file = env_string("K23_LOG_FILE");
  config.log_shards = env_flag("K23_LOG_SHARDS", config.log_shards);
  config.stats_dir = env_string("K23_STATS_DIR");
  return config;
}

Status ProcessTree::init(const ProcessTreeConfig& config) {
  TreeState& s = state();
  s.config = config;
  if (!s.atfork_registered) {
    if (::pthread_atfork(nullptr, nullptr, &atfork_child) != 0) {
      return Status::from_errno("pthread_atfork");
    }
    s.atfork_registered = true;
  }
  if (config.follow) {
    if (!snapshot_forced_env()) {
      return Status::fail(
          "process tree: LD_PRELOAD/K23_* environment exceeds the exec "
          "shim's static storage");
    }
    internal::set_exec_shim(&exec_shim);
  } else {
    internal::set_exec_shim(nullptr);
  }
  s.enabled = true;
  return Status::ok();
}

void ProcessTree::shutdown() {
  TreeState& s = state();
  s.enabled = false;
  s.fork_generation = 0;
  s.report = DegradationReport{};
  internal::set_exec_shim(nullptr);
}

bool ProcessTree::active() { return state().enabled; }

const ProcessTreeConfig& ProcessTree::config() { return state().config; }

uint32_t ProcessTree::fork_generation() { return state().fork_generation; }

const DegradationReport& ProcessTree::report() { return state().report; }

std::string ProcessTree::log_shard_file() {
  const TreeState& s = state();
  if (!s.config.log_shards || s.config.log_file.empty()) return {};
  return log_shard_path(s.config.log_file, ::getpid());
}

std::string ProcessTree::stats_dump_file() {
  const TreeState& s = state();
  if (s.config.stats_dir.empty()) return {};
  return s.config.stats_dir + "/" + std::to_string(::getpid()) +
         std::string(kStatsSuffix);
}

std::string ProcessTree::log_output_path() {
  const TreeState& s = state();
  std::string shard = log_shard_file();
  if (!shard.empty()) return shard;
  return s.config.log_file;
}

size_t ProcessTree::append_promoted_sites_to_log() {
  const std::string path = log_output_path();
  if (path.empty() || !Promotion::active()) return 0;
  OfflineLog log;
  if (auto existing = OfflineLog::load(path); existing.is_ok()) {
    log = std::move(existing).value();
  }
  const size_t added = Promotion::append_to_log(&log);
  if (added == 0) return 0;
  if (!log.save(path).is_ok()) {
    K23_LOG(kWarn) << "process tree: cannot append promoted sites to "
                   << path;
    return 0;
  }
  return added;
}

std::string ProcessTree::serialize_stats_dump() {
  SyscallStats& stats = Dispatcher::instance().stats();
  std::string out = std::string(kStatsHeader) +
                    std::to_string(::getpid()) + "\n";
  std::map<long, uint64_t> by_nr;
  for (size_t p = 0; p < kPaths; ++p) {
    const auto path = static_cast<EntryPath>(p);
    const uint64_t count = stats.by_path(path);
    out += "path,";
    out += kPathNames[p];
    out += ',';
    out += std::to_string(count);
    out += '\n';
    if (count == 0) continue;
    for (const auto& [nr, nr_count] :
         stats.top_by_nr(path, SyscallStats::kMaxTracked)) {
      by_nr[nr] += nr_count;
    }
  }
  for (const auto& [nr, count] : by_nr) {
    out += "nr," + std::to_string(nr) + "," + std::to_string(count) + "\n";
  }
  const PromotionStats promo = Promotion::stats();
  out += "promotion,promoted," + std::to_string(promo.promoted) + "\n";
  out += "promotion,sud_hits," + std::to_string(promo.sud_hits) + "\n";
  // Parsers predating the accel layer skip unknown row kinds, so this is
  // a compatible v1 extension.
  out += "accel,served," +
         std::to_string(stats.by_outcome(SyscallOutcome::kAccelerated)) +
         "\n";
  out += "batch,batched," +
         std::to_string(stats.by_outcome(SyscallOutcome::kBatched)) + "\n";
  out += "batch,flushed," +
         std::to_string(stats.by_outcome(SyscallOutcome::kBatchFlush)) + "\n";
  out += "replay,replayed," +
         std::to_string(stats.by_outcome(SyscallOutcome::kReplayed)) + "\n";
  out += "replay,diverged," +
         std::to_string(stats.by_outcome(SyscallOutcome::kDiverged)) + "\n";
  return out;
}

Status ProcessTree::write_stats_dump() {
  const std::string path = stats_dump_file();
  if (path.empty()) return Status::ok();
  return write_file_atomic(path, serialize_stats_dump());
}

Result<ProcessStatsDump> ProcessTree::parse_stats_dump(
    const std::string& text) {
  if (text.compare(0, kStatsHeader.size(), kStatsHeader) != 0) {
    return Status::fail("not a k23 stats dump");
  }
  ProcessStatsDump dump;
  bool first = true;
  for (std::string_view line : split(text, '\n')) {
    line = trim(line);
    if (line.empty()) continue;
    if (first) {
      auto pid = parse_u64(line.substr(kStatsHeader.size()));
      if (!pid) return Status::fail("malformed stats dump pid");
      dump.pid = static_cast<pid_t>(*pid);
      first = false;
      continue;
    }
    std::vector<std::string_view> fields = split(line, ',');
    if (fields.size() != 3) continue;
    auto value = parse_u64(fields[2]);
    if (!value) continue;
    if (fields[0] == "path") {
      for (size_t p = 0; p < kPaths; ++p) {
        if (fields[1] == kPathNames[p]) {
          dump.by_path[p] = *value;
          dump.total += *value;
        }
      }
    } else if (fields[0] == "nr") {
      auto nr = parse_u64(fields[1]);
      if (nr) dump.by_nr.emplace_back(static_cast<long>(*nr), *value);
    } else if (fields[0] == "promotion") {
      if (fields[1] == "promoted") dump.promoted = *value;
      if (fields[1] == "sud_hits") dump.sud_hits = *value;
    } else if (fields[0] == "accel") {
      if (fields[1] == "served") dump.accelerated = *value;
    } else if (fields[0] == "batch") {
      if (fields[1] == "batched") dump.batched = *value;
      if (fields[1] == "flushed") dump.flushed = *value;
    } else if (fields[0] == "replay") {
      if (fields[1] == "replayed") dump.replayed = *value;
      if (fields[1] == "diverged") dump.diverged = *value;
    }
  }
  std::sort(dump.by_nr.begin(), dump.by_nr.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return dump;
}

Result<std::vector<ProcessStatsDump>> ProcessTree::load_stats_dir(
    const std::string& dir) {
  auto names = list_dir(dir);
  if (!names.is_ok()) return names.error();
  std::vector<ProcessStatsDump> dumps;
  for (const std::string& name : names.value()) {
    if (name.size() <= kStatsSuffix.size() ||
        name.compare(name.size() - kStatsSuffix.size(), kStatsSuffix.size(),
                     kStatsSuffix) != 0) {
      continue;
    }
    auto contents = read_file(dir + "/" + name);
    if (!contents.is_ok()) continue;
    auto dump = parse_stats_dump(contents.value());
    if (dump.is_ok()) dumps.push_back(std::move(dump).value());
  }
  std::sort(dumps.begin(), dumps.end(),
            [](const auto& a, const auto& b) { return a.pid < b.pid; });
  return dumps;
}

}  // namespace k23
