// libLogger — K23's offline-phase recorder (paper §5.1, Figure 2).
//
// An SUD-based exhaustive interposer that, for every trapped system call:
//   1. disables interposition via the selector (handled by SudSession),
//   2. resolves the triggering instruction to a (region, offset) pair by
//      consulting /proc/self/maps,
//   3. records the pair if its region is executable, non-writable and
//      file-backed,
//   4. forwards the original system call and returns its result.
//
// Performance is irrelevant here (controlled environment, benign inputs);
// exhaustiveness within the post-load window is what matters. Calls issued
// before library load and vdso calls are invisible to libLogger — the
// online phase's ptracer covers those (paper §5.2).
#pragma once

#include <string>

#include "common/result.h"
#include "k23/offline_log.h"

namespace k23 {

class LibLogger {
 public:
  // Arms SUD and starts recording into an internal log.
  static Status start();
  // Stops recording, disarms SUD, and returns the accumulated log.
  static Result<OfflineLog> stop();
  static bool running();

  // Snapshot of the log so far (callable while running; used by tests
  // and by the Table 2 harness between workload phases).
  static OfflineLog snapshot();

  // Number of syscalls recorded (including duplicates).
  static uint64_t observed_syscalls();

  // Convenience: run `fn` with logging active and return the log.
  template <typename Fn>
  static Result<OfflineLog> record(Fn&& fn) {
    K23_RETURN_IF_ERROR(start());
    fn();
    return stop();
  }
};

}  // namespace k23
