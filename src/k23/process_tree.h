// Process-tree propagation: fork/vfork/execve lifecycle (DESIGN.md §9).
//
// The paper's online phase is armed once, in one process. Every real
// server in the Table 6 class creates children — nginx-style pre-fork
// workers, redis-style background-save forks, shell-outs via
// fork+execve — and each transition is a distinct way to silently lose
// interposition:
//
//  * fork/vfork: the kernel drops Syscall User Dispatch in the child, so
//    an un-re-armed worker runs with only the rewritten sites covered;
//  * execve: the fresh image loads without libk23_preload unless the
//    environment carries it — and the `envp = {NULL}` pattern (paper
//    Listing 1, pitfall P1a) drops it even from a cooperative parent.
//    The ptracer defends P1a only while attached; after the startup
//    handoff the tracer is gone and exec'd children escaped entirely.
//
// ProcessTree closes both holes from inside the process:
//
//  * a pthread_atfork child handler (gadget-routed, allocation-light)
//    re-arms SUD, re-validates the rewritten sites against the child's
//    own /proc/self/maps, resets per-process statistics, and records
//    every refusal on a child-side DegradationReport;
//  * an exec shim registered with the dispatcher rebuilds envp on every
//    interposed execve/execveat from a snapshot taken at init — static
//    storage only, so it is safe from the SIGSYS path — ensuring
//    LD_PRELOAD and all K23_* variables survive, including through an
//    empty environment. K23_FOLLOW=off opts out (children escape, the
//    paper's single-process behavior);
//  * per-process offline-log shards and stats dumps (PID-tagged,
//    crash-atomic) so a worker tree produces mergeable artifacts instead
//    of racing on shared files — k23_logmerge and `k23_run --tree` fold
//    them back together post-mortem.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "k23/degradation.h"

namespace k23 {

struct ProcessTreeConfig {
  // Follow children across execve (the exec shim). Off restores the
  // paper's behavior: exec'd children run uninterposed.
  bool follow = true;
  // Offline-log base path (K23_LOG_FILE); empty disables log shards.
  std::string log_file;
  // Write per-process "<log_file>.<pid>.shard" files instead of mutating
  // the shared base log (K23_LOG_SHARDS=1).
  bool log_shards = false;
  // Directory for per-process stats dumps (K23_STATS_DIR); empty = off.
  std::string stats_dir;

  // Reads K23_FOLLOW (off|0|false opt out), K23_LOG_FILE,
  // K23_LOG_SHARDS, K23_STATS_DIR.
  static ProcessTreeConfig from_env();
};

// One process's post-mortem stats dump (written by write_stats_dump,
// parsed by `k23_run --stats --tree`). Plain text, one file per PID:
//
//   # k23-stats v1 pid=<pid>
//   path,<path-name>,<count>
//   nr,<syscall-nr>,<count>
//   promotion,<counter>,<value>
//   accel,served,<count>
//   batch,batched,<count>
//   batch,flushed,<count>
//   replay,replayed,<count>
//   replay,diverged,<count>
//
// Unknown rows are skipped by the parser, so old readers tolerate new
// rows (the replay rows ride that rule).
struct ProcessStatsDump {
  pid_t pid = 0;
  uint64_t total = 0;
  uint64_t by_path[4] = {};  // EntryPath order: rewritten, sud, ptrace, offline
  std::vector<std::pair<long, uint64_t>> by_nr;  // sorted by count, desc
  uint64_t promoted = 0;
  uint64_t sud_hits = 0;
  uint64_t accelerated = 0;  // answered in userspace (SyscallOutcome)
  uint64_t batched = 0;      // writes absorbed into submission rings
  uint64_t flushed = 0;      // coalesced flush submissions draining them
  uint64_t replayed = 0;     // calls served from / verified against a trace
  uint64_t diverged = 0;     // calls that departed from the recorded trace
};

class ProcessTree {
 public:
  // Arms process-tree propagation for the current process: registers the
  // pthread_atfork child handler (once per process — pthread_atfork
  // cannot be unregistered, so shutdown() only disables it) and, when
  // `config.follow`, snapshots the injection environment and installs the
  // dispatcher exec shim. Idempotent; later calls replace the config.
  static Status init(const ProcessTreeConfig& config);
  static void shutdown();  // disables handlers; tests only
  static bool active();
  static const ProcessTreeConfig& config();

  // How many forks deep this process is below the init()-calling root
  // (0 in the root, 1 in its children, ...). Bumped by the atfork child
  // handler — the direct witness that the handler ran.
  static uint32_t fork_generation();

  // Child-side degradation events accumulated by the atfork handler
  // (post-fork SUD refusals, lost rewritten sites).
  static const DegradationReport& report();

  // This process's artifact paths under the current config ("" when the
  // corresponding feature is off).
  static std::string log_shard_file();
  static std::string stats_dump_file();

  // Where this process should persist offline-log output: the PID shard
  // when sharding is on, the shared base log otherwise, "" when neither.
  static std::string log_output_path();

  // Appends this process's promoted sites to its shard/base log
  // (crash-atomic, merging with the file's previous contents). Returns
  // the number of sites appended; 0 when promotion is idle or logging is
  // unconfigured.
  static size_t append_promoted_sites_to_log();

  // Writes the per-process stats dump (crash-atomic). No-op Status::ok
  // when stats_dir is unset.
  static Status write_stats_dump();

  // --- post-mortem aggregation (k23_run --stats --tree) --------------------
  static std::string serialize_stats_dump();
  static Result<ProcessStatsDump> parse_stats_dump(const std::string& text);
  // Every parseable dump in `dir`, sorted by pid. Unparseable files are
  // skipped (a worker killed mid-save leaves a torn temp file at worst —
  // the atomic rename means a present dump is always whole).
  static Result<std::vector<ProcessStatsDump>> load_stats_dir(
      const std::string& dir);
};

}  // namespace k23
