// The offline-phase log (paper §5.1, Figure 3).
//
// Each record is a (region pathname, file offset) pair identifying one
// syscall/sysenter instruction observed to actually trigger a system call
// under representative inputs. Offsets within a mapped file are stable
// across runs — including under ASLR — so the online phase can map records
// back to live virtual addresses.
//
// On-disk format (exactly Figure 3):   <pathname>,<decimal offset>\n
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "procmaps/procmaps.h"

namespace k23 {

struct LogEntry {
  std::string region;    // absolute pathname, e.g. /usr/lib/.../libc.so.6
  uint64_t offset = 0;   // file offset of the syscall instruction

  auto operator<=>(const LogEntry&) const = default;
};

class OfflineLog {
 public:
  // Records one site; duplicates collapse. Returns true if new.
  bool add(const std::string& region, uint64_t offset);

  // Resolves a live instruction address against a maps snapshot and
  // records it — but only when the containing region is "expected":
  // file-backed, executable and non-writable (paper §5.1; writable or
  // anonymous regions may hold generated code that won't exist at the
  // online phase's single rewriting step).
  bool add_address(const ProcessMaps& maps, uint64_t address);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::set<LogEntry>& entries() const { return entries_; }

  // Unique regions referenced (Table 2 reports counts per application).
  std::vector<std::string> regions() const;

  // Merge another log (multiple offline runs with different inputs).
  void merge(const OfflineLog& other);

  // --- Figure 3 serialization ---------------------------------------------
  std::string serialize() const;
  static Result<OfflineLog> deserialize(const std::string& text);
  Status save(const std::string& path) const;
  static Result<OfflineLog> load(const std::string& path);

  // Saves and strips write permission from the file + directory — the
  // portable part of the paper's "mark the log directory immutable".
  Status save_immutable(const std::string& path) const;

  // Maps every entry to its live virtual address in the current process.
  // Entries whose region is not mapped are reported in `unresolved`.
  std::vector<uint64_t> resolve(const ProcessMaps& maps,
                                std::vector<LogEntry>* unresolved) const;

 private:
  std::set<LogEntry> entries_;
};

}  // namespace k23
