// The offline-phase log (paper §5.1, Figure 3).
//
// Each record is a (region pathname, file offset) pair identifying one
// syscall/sysenter instruction observed to actually trigger a system call
// under representative inputs. Offsets within a mapped file are stable
// across runs — including under ASLR — so the online phase can map records
// back to live virtual addresses.
//
// On-disk formats:
//   v1 (exactly Figure 3):   <pathname>,<decimal offset>\n
//   v2 (this repo's hardened format):
//        # k23-offline-log v2 n=<record count>
//        <pathname>,<decimal offset>,<crc32 of "pathname,offset" as 8
//        lowercase hex digits>\n
//
// v1 has no integrity protection: a log truncated by a crashed offline
// run, or a flipped bit, either fails the whole load or — worse — yields
// a wrong offset the online phase would then verify-and-skip at best. v2
// detects both: per-record CRCs catch corruption, the header count
// catches a torn tail, and loading *recovers* the valid prefix instead
// of discarding the run (the SUD fallback covers whatever was lost; the
// DegradationReport says so out loud). Files without the header parse as
// v1, strictly, so Figure-3 logs keep working.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "procmaps/procmaps.h"

namespace k23 {

struct LogEntry {
  std::string region;    // absolute pathname, e.g. /usr/lib/.../libc.so.6
  uint64_t offset = 0;   // file offset of the syscall instruction

  auto operator<=>(const LogEntry&) const = default;
};

// What deserialize/load observed about the file's integrity. `recovered`
// counts records accepted; corruption never fails a v2 load (the caller
// degrades gracefully), only an unknown future version does.
struct LogLoadReport {
  int version = 1;
  size_t recovered = 0;        // records accepted into the log
  size_t corrupt_records = 0;  // lines dropped (bad CRC / malformed)
  bool torn_tail = false;      // file ends mid-record or short of n=
  std::vector<std::string> issues;  // human-readable, one per problem
};

class OfflineLog {
 public:
  // Records one site; duplicates collapse. Returns true if new.
  bool add(const std::string& region, uint64_t offset);

  // Resolves a live instruction address against a maps snapshot and
  // records it — but only when the containing region is "expected":
  // file-backed, executable and non-writable (paper §5.1; writable or
  // anonymous regions may hold generated code that won't exist at the
  // online phase's single rewriting step).
  bool add_address(const ProcessMaps& maps, uint64_t address);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::set<LogEntry>& entries() const { return entries_; }

  // Unique regions referenced (Table 2 reports counts per application),
  // in entry-iteration (sorted) first-seen order.
  std::vector<std::string> regions() const;

  // Merge another log (multiple offline runs with different inputs).
  void merge(const OfflineLog& other);

  // --- serialization ------------------------------------------------------
  // Writes the v2 format. serialize_v1() emits the bare Figure 3 layout
  // for interop with the paper's tooling.
  std::string serialize() const;
  std::string serialize_v1() const;
  // `report`, when given, receives integrity details; a v2 file with
  // corrupt records still loads (valid prefix recovered). v1 files keep
  // the original strict behavior: any malformed line fails the load.
  static Result<OfflineLog> deserialize(const std::string& text,
                                        LogLoadReport* report = nullptr);
  // Crash-atomic: temp file + fsync + rename (a torn save can otherwise
  // poison every later online phase).
  Status save(const std::string& path) const;
  static Result<OfflineLog> load(const std::string& path,
                                 LogLoadReport* report = nullptr);

  // Atomic save, then strips write permission from the file — the
  // portable part of the paper's "mark the log directory immutable".
  Status save_immutable(const std::string& path) const;

  // Maps every entry to its live virtual address in the current process.
  // Entries whose region is not mapped are reported in `unresolved`.
  std::vector<uint64_t> resolve(const ProcessMaps& maps,
                                std::vector<LogEntry>* unresolved) const;

 private:
  std::set<LogEntry> entries_;
};

// --- per-process log shards (process-tree propagation, DESIGN.md §9) -------
//
// A worker tree cannot share one log file: concurrent crash-atomic saves
// are last-writer-wins, silently dropping every other process's sites.
// With K23_LOG_SHARDS=1 each process instead writes its own PID-tagged
// shard next to the base log ("<base>.<pid>.shard", v2 format, atomic
// save) and k23_logmerge / `k23_run --tree` fold the shards back into one
// merged site log — duplicates collapse on merge, torn shards recover
// their valid prefix exactly like any v2 log.

// "<base>.<pid>.shard".
std::string log_shard_path(const std::string& base, pid_t pid);

// Full paths of every "<base>.<pid>.shard" sibling of `base`, sorted.
// A missing directory yields an empty list, not an error.
std::vector<std::string> discover_log_shards(const std::string& base);

// Loads `base` (when present) plus every discovered shard and merges them.
// Per-file corruption degrades (valid prefix recovered, issue recorded in
// `report`) rather than failing the merge; `report`, when given,
// accumulates totals across all inputs.
Result<OfflineLog> load_merged_shards(const std::string& base,
                                      LogLoadReport* report = nullptr);

}  // namespace k23
