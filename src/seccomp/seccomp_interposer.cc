#include "seccomp/seccomp_interposer.h"

#include <linux/audit.h>
#include <linux/filter.h>
#include <linux/seccomp.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <sys/syscall.h>
#include <ucontext.h>

#include <atomic>
#include <cstring>

#ifndef SYS_SECCOMP
#define SYS_SECCOMP 1  // siginfo si_code for seccomp-generated SIGSYS
#endif
#ifndef SECCOMP_RET_KILL_PROCESS
#define SECCOMP_RET_KILL_PROCESS 0x80000000U
#endif

#include "arch/regs.h"
#include "arch/thunks.h"
#include "common/logging.h"
#include "common/scope_guard.h"
#include "faultinject/faultinject.h"
#include "interpose/internal.h"

namespace k23 {
namespace {

constexpr size_t kGadgetPageSize = 0x1000;
constexpr size_t kRestorerOffset = 0x100;
constexpr size_t kSigreturnOffset = 0x180;

std::atomic<bool> g_armed{false};
SeccompInterposer::Options g_options;
uint8_t* g_gadget_page = nullptr;
std::atomic<uint64_t> g_trap_count{0};

using GadgetFn = long (*)(long, long, long, long, long, long, long);
GadgetFn gadget_fn() { return reinterpret_cast<GadgetFn>(g_gadget_page); }

struct KernelSigaction {
  void* handler;
  unsigned long flags;
  void* restorer;
  unsigned long mask;
};
constexpr unsigned long kSaRestorer = 0x04000000;

void sigsys_handler(int, siginfo_t* info, void* ucv) {
  if (info == nullptr || info->si_code != SYS_SECCOMP) return;
  auto* uc = static_cast<ucontext_t*>(ucv);
  g_trap_count.fetch_add(1, std::memory_order_relaxed);

  SyscallArgs args = syscall_args_from_ucontext(*uc);
  HookContext ctx;
  ctx.return_address = uc->uc_mcontext.gregs[REG_RIP];
  ctx.site_address = trapping_insn_address(*uc);
  ctx.path = g_options.entry_path;

  if (args.nr == SYS_rt_sigreturn) {
    args.rdi = static_cast<long>(stack_pointer(*uc));
    Dispatcher::execute(args, ctx.return_address);  // never returns
  }
  set_syscall_result(*uc, Dispatcher::instance().on_syscall(args, ctx));
}

Status build_gadget_page() {
  void* page = ::mmap(nullptr, kGadgetPageSize, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (page == MAP_FAILED) return Status::from_errno("mmap gadget page");
  auto* p = static_cast<uint8_t*>(page);
  const size_t thunk_len = static_cast<size_t>(k23_gadget_template_end -
                                               k23_gadget_template_begin);
  std::memcpy(p, k23_gadget_template_begin, thunk_len);
  const uint8_t restorer[] = {0xb8, 0x0f, 0x00, 0x00, 0x00, 0x0f, 0x05};
  std::memcpy(p + kRestorerOffset, restorer, sizeof(restorer));
  const uint8_t sigreturn_thunk[] = {0x48, 0x89, 0xfc, 0xb8, 0x0f, 0x00,
                                     0x00, 0x00, 0x0f, 0x05, 0x0f, 0x0b};
  std::memcpy(p + kSigreturnOffset, sigreturn_thunk,
              sizeof(sigreturn_thunk));
  if (::mprotect(page, kGadgetPageSize, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(page, kGadgetPageSize);
    return Status::from_errno("mprotect gadget page");
  }
  g_gadget_page = p;
  return Status::ok();
}

Status install_handler() {
  KernelSigaction ksa{};
  ksa.handler = reinterpret_cast<void*>(&sigsys_handler);
  ksa.flags = SA_SIGINFO | SA_NODEFER | kSaRestorer;
  ksa.restorer = g_gadget_page + kRestorerOffset;
  long rc = raw_syscall(SYS_rt_sigaction, SIGSYS,
                        reinterpret_cast<long>(&ksa), 0, 8);
  if (rc != 0) {
    errno = syscall_errno(rc);
    return Status::from_errno("rt_sigaction(SIGSYS)");
  }
  return Status::ok();
}

// BPF: trap unless the trapping instruction lies inside the gadget page.
// seccomp_data.instruction_pointer is the address *after* `syscall`, so
// the window is (page, page + size].
Status install_filter() {
  const uint64_t lo = reinterpret_cast<uint64_t>(g_gadget_page);
  const uint64_t hi = lo + kGadgetPageSize;

  sock_filter filter[] = {
      // Architecture pin: kill on anything but x86-64.
      BPF_STMT(BPF_LD | BPF_W | BPF_ABS,
               offsetof(seccomp_data, arch)),
      BPF_JUMP(BPF_JMP | BPF_JEQ | BPF_K, AUDIT_ARCH_X86_64, 1, 0),
      BPF_STMT(BPF_RET | BPF_K, SECCOMP_RET_KILL_PROCESS),
      // IP low word.
      BPF_STMT(BPF_LD | BPF_W | BPF_ABS,
               offsetof(seccomp_data, instruction_pointer)),
      // ip_lo < lo_lo? -> compare full via high word first. Classic BPF
      // is 32-bit; compare the high words, then the low words.
      BPF_STMT(BPF_LD | BPF_W | BPF_ABS,
               offsetof(seccomp_data, instruction_pointer) + 4),
      BPF_JUMP(BPF_JMP | BPF_JEQ | BPF_K,
               static_cast<uint32_t>(lo >> 32), 1, 0),
      BPF_STMT(BPF_RET | BPF_K, SECCOMP_RET_TRAP),  // different high word
      BPF_STMT(BPF_LD | BPF_W | BPF_ABS,
               offsetof(seccomp_data, instruction_pointer)),
      // low >= lo_lo ?
      BPF_JUMP(BPF_JMP | BPF_JGE | BPF_K, static_cast<uint32_t>(lo), 1, 0),
      BPF_STMT(BPF_RET | BPF_K, SECCOMP_RET_TRAP),
      // low <= hi_lo ? (ip is post-instruction, window is (lo, hi])
      BPF_JUMP(BPF_JMP | BPF_JGT | BPF_K, static_cast<uint32_t>(hi), 0, 1),
      BPF_STMT(BPF_RET | BPF_K, SECCOMP_RET_TRAP),
      BPF_STMT(BPF_RET | BPF_K, SECCOMP_RET_ALLOW),
  };
  sock_fprog prog{};
  prog.len = sizeof(filter) / sizeof(filter[0]);
  prog.filter = filter;

  if (::prctl(PR_SET_NO_NEW_PRIVS, 1, 0, 0, 0) != 0) {
    return Status::from_errno("PR_SET_NO_NEW_PRIVS");
  }
  long rc = raw_syscall(SYS_seccomp, SECCOMP_SET_MODE_FILTER,
                        SECCOMP_FILTER_FLAG_TSYNC,
                        reinterpret_cast<long>(&prog));
  if (rc != 0) {
    errno = syscall_errno(rc);
    return Status::from_errno("seccomp(SET_MODE_FILTER)");
  }
  return Status::ok();
}

}  // namespace

Status SeccompInterposer::arm(const Options& options) {
  if (g_armed.load(std::memory_order_acquire)) {
    return Status::fail("seccomp interposer already armed");
  }
  // "seccomp_arm" fault point: lets tests drive the ladder all the way
  // to its bottom rung (no exhaustive mechanism available at all).
  if (fault_fires("seccomp_arm")) {
    return Status::from_errno("seccomp arm");
  }
  g_options = options;
  if (g_gadget_page == nullptr) {
    K23_RETURN_IF_ERROR(build_gadget_page());
  }
  K23_RETURN_IF_ERROR(install_handler());
  // Repoint the dispatcher's primitives at the allowlisted page *before*
  // the filter goes live: between the two calls every dispatcher
  // passthrough must already avoid trapping.
  internal::set_syscall_fn(gadget_fn());
  internal::set_sigreturn_fn(reinterpret_cast<void (*)(uint64_t)>(
      g_gadget_page + kSigreturnOffset));
  Status st = install_filter();
  if (!st.is_ok()) {
    internal::set_syscall_fn(nullptr);
    internal::set_sigreturn_fn(nullptr);
    return st;
  }
  g_trap_count.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
  return Status::ok();
}

bool SeccompInterposer::armed() {
  return g_armed.load(std::memory_order_acquire);
}

uint64_t SeccompInterposer::trap_count() {
  return g_trap_count.load(std::memory_order_relaxed);
}

}  // namespace k23
