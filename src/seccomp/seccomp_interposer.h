// seccomp(SECCOMP_RET_TRAP)-based syscall interposition.
//
// The paper names seccomp as an alternative exhaustive mechanism for the
// offline phase (§5.1). This implementation mirrors SudSession's shape:
// a BPF filter traps every syscall whose instruction pointer lies outside
// the allowlisted gadget page (seccomp_data carries the IP, so the filter
// plays the role of SUD's address-range check), the SIGSYS handler
// funnels into interpose::Dispatcher, and passthrough executions run
// from the gadget page so they never re-trap.
//
// Two differences from SUD matter operationally and are covered in tests:
//   * seccomp filters are irrevocable — there is no disarm();
//   * filters are inherited across fork AND execve (no re-arming needed,
//     but also no way to scope the effect to one program phase).
#pragma once

#include <cstdint>

#include "common/result.h"
#include "interpose/dispatch.h"

namespace k23 {

class SeccompInterposer {
 public:
  struct Options {
    EntryPath entry_path = EntryPath::kSudFallback;
  };

  // Installs the filter on the calling thread (and, via
  // SECCOMP_FILTER_FLAG_TSYNC, every existing thread). Irrevocable.
  static Status arm(const Options& options);
  static Status arm() { return arm(Options{}); }
  static bool armed();

  // Number of SIGSYS traps dispatched since arm().
  static uint64_t trap_count();
};

}  // namespace k23
