// The k23d supervisor: registration service, live config publisher,
// quota refiller, and fleet-wide stats aggregator (DESIGN.md §14).
//
// One instance owns one Unix socket and one global shared-memory
// segment. Workers register over the socket and receive two memfds
// (global + their own worker segment); after that every per-syscall
// interaction happens through shared memory and the socket is only the
// liveness signal. Control commands (`k23d --set/--stats/--shutdown`)
// arrive over the same socket from short-lived controller connections.
//
// The event loop is single-threaded (poll over the listener plus every
// open connection, with a periodic tick for token-bucket refill);
// run_in_thread() wraps it for in-process use by tests and benches.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "fleet/proto.h"

namespace k23::fleet {

struct SupervisorOptions {
  std::string sock;          // Unix socket path (required)
  FleetSettings initial;     // generation-0 settings
  uint32_t tick_ms = 50;     // refill / poll cadence
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Binds the socket (taking over a stale file, refusing a live one)
  // and publishes generation 0.
  Status init();

  // Runs the event loop until stop() or a kShutdown message. init()
  // must have succeeded.
  void run();

  // init() + run() on an internal thread; stop() joins it.
  Status run_in_thread();
  void stop();

  // Applies one "key=value" mutation and republishes the settings under
  // the seqlock (every accepted set bumps the generation, including
  // quota changes — workers rescan their tenant's bucket on a
  // generation change). Keys:
  //   publish_ms=N            worker stats/heartbeat period
  //   accel=on|off            fleet-wide accel kill switch
  //   batch=on|off            fleet-wide batch kill switch
  //   deny=NR[:ERRNO][,...]   replace the pushed rule list ("deny=" clears;
  //                           NR -1 matches any syscall)
  //   quota=TENANT:RATE:BURST[:ERRNO]   add/update a token bucket
  //                           (RATE 0 removes the tenant's bucket)
  Status apply_set(const std::string& kv, uint32_t* generation_out = nullptr);

  // Aggregated live view: per-worker identity/generation/heartbeat plus
  // the fleet totals folded from each worker's published stats dump
  // (ProcessTree::parse_stats_dump — the same v2 format the post-mortem
  // tools read).
  std::string stats_text();

  uint32_t generation() const;
  size_t worker_count();
  const std::string& socket_path() const { return options_.sock; }
  // Test access to the live global segment (nullptr before init()).
  GlobalSegment* global_segment() { return global_; }

 private:
  struct Connection;

  // *_locked variants assume mu_ is held (the run loop holds it across
  // handle_message; the public wrappers take it for external callers).
  void handle_message(Connection& conn);
  void handle_register(Connection& conn, const std::string& payload);
  void drop_connection(size_t index);
  void refill_buckets();
  Status apply_set_locked(const std::string& kv, uint32_t* generation_out);
  std::string stats_text_locked();
  Status set_quota(const std::string& spec);
  Status set_rules(const std::string& spec);

  SupervisorOptions options_;
  std::mutex mu_;  // guards conns_/settings_/buckets vs external callers
  int listen_fd_ = -1;
  GlobalSegment* global_ = nullptr;
  int global_fd_ = -1;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread thread_;
  // Supervisor-side source of truth for the published settings (never
  // read back out of the seqlocked area).
  FleetSettings settings_;
  int64_t last_refill_ms_ = 0;
  // Sub-tick refill remainders, one per bucket slot (rate*dt rarely
  // divides evenly at 50ms ticks).
  uint64_t refill_carry_[kMaxTenants] = {};
};

}  // namespace k23::fleet
