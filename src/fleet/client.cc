#include "fleet/client.h"

#include <poll.h>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "accel/accel.h"
#include "batch/batch.h"
#include "common/env.h"
#include "fleet/shm.h"
#include "interpose/internal.h"
#include "k23/process_tree.h"

namespace k23::fleet {
namespace {

// The publisher/reconnect thread's own syscalls (connect, poll, the
// stats serialization) must not be denied or quota-billed by the very
// config it maintains — a deny-all push would otherwise sever the
// worker from the supervisor that could lift it.
__attribute__((tls_model("initial-exec"))) constinit thread_local bool
    t_fleet_internal = false;

// One applied (worker-local) copy of the pushed settings. The hot path
// reads through a single atomic pointer; the slow path fills the next
// slot of a small ring and swings the pointer. Slots are never freed and
// the ring is deep enough that a reader stalled inside a signal handler
// would have to sleep across kAppliedSlots generation changes before its
// slot is reused.
struct AppliedConfig {
  uint32_t generation = 0;
  int bucket_index = -1;  // this tenant's slot in the quota page, -1 none
  FleetSettings settings;
};

constexpr size_t kAppliedSlots = 8;

struct ClientState {
  FleetClientConfig config;
  char tenant[kTenantNameLen] = {};

  std::atomic<GlobalSegment*> global{nullptr};
  std::atomic<WorkerSegment*> worker{nullptr};
  int sock_fd = -1;  // owned by the publisher thread after init

  AppliedConfig slots[kAppliedSlots];
  size_t next_slot = 0;  // guarded by apply_lock
  std::atomic<AppliedConfig*> applied{nullptr};
  std::atomic_flag apply_lock = ATOMIC_FLAG_INIT;

  HookHandle hook_handle = 0;
  pthread_t publisher_tid{};
  std::atomic<bool> publisher_running{false};
  std::atomic<bool> stop{false};

  uint8_t accel_off_applied = 0;
  uint8_t batch_off_applied = 0;
};

// Swapped, never freed (a SIGSYS-context reader may hold the pointer);
// shutdown() retires the state and a later init() builds a fresh one.
std::atomic<ClientState*> g_state{nullptr};

// Calls the dispatcher never returns from / the process cannot survive
// losing: denying these under a fleet-wide deny rule or an exhausted
// quota would wedge or corrupt the worker instead of throttling it.
bool deny_exempt(long nr) {
  switch (nr) {
    case SYS_rt_sigreturn:
    case SYS_exit:
    case SYS_exit_group:
      return true;
    default:
      return false;
  }
}

// Copies the published settings out under the seqlock and re-resolves
// this tenant's bucket slot. Safe from SIGSYS context: fixed-size
// memcpy, no allocation, try-lock only (a losing thread proceeds on the
// previous snapshot). Returns the now-current applied config, or nullptr
// when nothing has ever been applied and the copy lost its race.
AppliedConfig* apply_slow(ClientState& s, GlobalSegment* g) {
  AppliedConfig* cur = s.applied.load(std::memory_order_acquire);
  if (s.apply_lock.test_and_set(std::memory_order_acquire)) return cur;
  AppliedConfig* next = &s.slots[s.next_slot % kAppliedSlots];
  if (next == cur) next = &s.slots[++s.next_slot % kAppliedSlots];
  const uint32_t seq = seqlock_snapshot(g->seq, g->settings, &next->settings);
  if (seq != UINT32_MAX) {
    next->generation = seq >> 1;
    next->bucket_index = -1;
    for (size_t i = 0; i < kMaxTenants; ++i) {
      const TokenBucket& b = g->buckets[i];
      if (b.active.load(std::memory_order_acquire) != 0 &&
          std::strncmp(b.tenant, s.tenant, kTenantNameLen) == 0) {
        next->bucket_index = static_cast<int>(i);
        break;
      }
    }
    ++s.next_slot;
    s.applied.store(next, std::memory_order_release);
    cur = next;
    // The worker segment mirror is the fleet-smoke witness that this
    // process observed the push.
    if (WorkerSegment* w = s.worker.load(std::memory_order_acquire)) {
      w->observed_generation.store(next->generation,
                                   std::memory_order_release);
    }
  }
  s.apply_lock.clear(std::memory_order_release);
  return cur;
}

void apply_if_changed(ClientState& s, GlobalSegment* g) {
  AppliedConfig* ac = s.applied.load(std::memory_order_acquire);
  if (ac == nullptr || g->generation() != ac->generation) {
    apply_slow(s, g);
  }
}

// Applies the fleet-wide accel/batch kill switches. Thread context only
// (Accel/Batch init may allocate); called from the publisher, never the
// hook. Turning a layer back on re-reads this process's own K23_* env,
// so a fleet-wide "on" cannot force a layer the worker opted out of.
void apply_toggles(ClientState& s) {
  AppliedConfig* ac = s.applied.load(std::memory_order_acquire);
  if (ac == nullptr) return;
  if (ac->settings.accel_off != s.accel_off_applied) {
    s.accel_off_applied = ac->settings.accel_off;
    if (s.accel_off_applied != 0) {
      Accel::shutdown();
    } else {
      (void)Accel::init(AccelConfig::from_env());
    }
  }
  if (ac->settings.batch_off != s.batch_off_applied) {
    s.batch_off_applied = ac->settings.batch_off;
    if (s.batch_off_applied != 0) {
      Batch::shutdown();
    } else {
      (void)Batch::init(BatchConfig::from_env());
    }
  }
}

Status register_with_supervisor(ClientState& s) {
  auto fd = connect_unix(s.config.sock, s.config.connect_timeout_ms);
  if (!fd.is_ok()) return fd.status();

  RegisterRequest req;
  req.pid = static_cast<int32_t>(::getpid());
  std::memcpy(req.tenant, s.tenant, kTenantNameLen);
  if (Status st = send_message(fd.value(), MsgKind::kRegister, &req,
                               sizeof(req), nullptr, 0,
                               s.config.connect_timeout_ms);
      !st.is_ok()) {
    ::close(fd.value());
    return st;
  }
  auto reply = recv_message(fd.value(), s.config.connect_timeout_ms);
  if (!reply.is_ok()) {
    ::close(fd.value());
    return reply.status();
  }
  Message& m = reply.value();
  RegisterReply rr{};
  if (m.kind != MsgKind::kRegisterReply || m.payload.size() < sizeof(rr)) {
    m.close_fds();
    ::close(fd.value());
    return Status::fail("fleet: bad register reply", EPROTO);
  }
  std::memcpy(&rr, m.payload.data(), sizeof(rr));
  if (rr.status != 0) {
    m.close_fds();
    ::close(fd.value());
    return Status::fail("fleet: registration rejected", rr.status);
  }
  if (m.fd_count != 2) {
    m.close_fds();
    ::close(fd.value());
    return Status::fail("fleet: register reply missing segments", EPROTO);
  }

  auto global_base = map_segment(m.fds[0], sizeof(GlobalSegment));
  auto worker_base = map_segment(m.fds[1], sizeof(WorkerSegment));
  // The mappings keep the memfds alive; the fd numbers themselves are
  // not needed again.
  m.close_fds();
  if (!global_base.is_ok() || !worker_base.is_ok()) {
    ::close(fd.value());
    return !global_base.is_ok() ? global_base.status() : worker_base.status();
  }
  if (Status st = validate_segment(global_base.value(), "fleet: global seg");
      !st.is_ok()) {
    ::close(fd.value());
    return st;
  }
  if (Status st = validate_segment(worker_base.value(), "fleet: worker seg");
      !st.is_ok()) {
    ::close(fd.value());
    return st;
  }
  // Previous mappings (pre-restart) are retired, never unmapped: a
  // stalled reader may still be walking them.
  s.worker.store(static_cast<WorkerSegment*>(worker_base.value()),
                 std::memory_order_release);
  s.global.store(static_cast<GlobalSegment*>(global_base.value()),
                 std::memory_order_release);
  s.sock_fd = fd.value();
  return Status::ok();
}

// True when the supervisor's end of the registration socket is gone.
// The supervisor never sends unsolicited data, so a readable socket is
// either EOF or noise to drain.
bool supervisor_died(int fd) {
  struct pollfd p = {fd, POLLIN, 0};
  if (::poll(&p, 1, 0) <= 0) return false;
  if ((p.revents & (POLLHUP | POLLERR)) != 0) return true;
  if ((p.revents & POLLIN) != 0) {
    char buf[64];
    const ssize_t rc = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (rc == 0) return true;
    if (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return true;
    }
  }
  return false;
}

// Sleeps ~ms but wakes within 50ms of stop() being called.
void sleep_with_stop(ClientState& s, uint32_t ms) {
  while (ms > 0 && !s.stop.load(std::memory_order_acquire)) {
    const uint32_t chunk = ms < 50 ? ms : 50;
    struct timespec ts = {0, static_cast<long>(chunk) * 1000000L};
    ::nanosleep(&ts, nullptr);
    ms -= chunk;
  }
}

void* publisher_main(void* arg) {
  ClientState& s = *static_cast<ClientState*>(arg);
  t_fleet_internal = true;
  int backoff_ms = 200;
  uint64_t heartbeat = 0;
  while (!s.stop.load(std::memory_order_acquire)) {
    GlobalSegment* g = s.global.load(std::memory_order_acquire);
    if (g == nullptr) {
      // Supervisor lost (restart) or this is a fork child that has not
      // re-attached yet: retry forever with capped backoff. The worker
      // runs un-supervised in the meantime.
      if (s.sock_fd >= 0) {
        ::close(s.sock_fd);
        s.sock_fd = -1;
      }
      if (register_with_supervisor(s).is_ok()) {
        backoff_ms = 200;
        apply_slow(s, s.global.load(std::memory_order_acquire));
        apply_toggles(s);
        continue;
      }
      sleep_with_stop(s, static_cast<uint32_t>(backoff_ms));
      backoff_ms = backoff_ms < 1000 ? backoff_ms * 2 : 2000;
      continue;
    }

    // Idle workers observe pushes here: a process blocked in epoll_wait
    // makes no syscalls that would hit the chain's slow path.
    apply_if_changed(s, g);
    apply_toggles(s);

    if (WorkerSegment* w = s.worker.load(std::memory_order_acquire)) {
      const std::string text = ProcessTree::serialize_stats_dump();
      publish_worker_stats(*w, text.data(), text.size());
      w->heartbeat.store(++heartbeat, std::memory_order_release);
    }

    if (s.sock_fd >= 0 && supervisor_died(s.sock_fd)) {
      ::close(s.sock_fd);
      s.sock_fd = -1;
      // Stop consulting the dead supervisor's config (mappings retired,
      // not unmapped) and let the reconnect path above take over.
      s.global.store(nullptr, std::memory_order_release);
      s.worker.store(nullptr, std::memory_order_release);
      continue;
    }

    AppliedConfig* ac = s.applied.load(std::memory_order_acquire);
    sleep_with_stop(s, ac != nullptr ? ac->settings.publish_ms : 500);
  }
  return nullptr;
}

void start_publisher(ClientState& s) {
  s.stop.store(false, std::memory_order_release);
  if (::pthread_create(&s.publisher_tid, nullptr, &publisher_main, &s) == 0) {
    s.publisher_running.store(true, std::memory_order_release);
  }
}

// Dispatcher fork path (async-signal-safe): the inherited worker segment
// and publisher thread belong to the parent. The global config mapping
// stays valid — a raw-syscall fork child keeps consulting it, it just
// stops publishing until (if ever) the atfork re-register below runs.
void child_mark_stale() {
  ClientState* s = g_state.load(std::memory_order_acquire);
  if (s == nullptr) return;
  s->worker.store(nullptr, std::memory_order_release);
  s->publisher_running.store(false, std::memory_order_release);
}

// ProcessTree atfork child handler (ordinary thread context): become our
// own worker. Registration itself may fail (supervisor briefly down);
// the fresh publisher thread keeps retrying.
void child_reregister() {
  ClientState* sp = g_state.load(std::memory_order_acquire);
  if (sp == nullptr) return;
  ClientState& s = *sp;
  s.worker.store(nullptr, std::memory_order_release);
  s.global.store(nullptr, std::memory_order_release);
  s.publisher_running.store(false, std::memory_order_release);
  if (s.sock_fd >= 0) {
    ::close(s.sock_fd);  // our copy of the parent's socket
    s.sock_fd = -1;
  }
  if (register_with_supervisor(s).is_ok()) {
    apply_slow(s, s.global.load(std::memory_order_acquire));
  }
  start_publisher(s);
}

}  // namespace

FleetClientConfig FleetClientConfig::from_env() {
  FleetClientConfig config;
  config.enabled = env_flag("K23_FLEET", false);
  config.sock = env_string("K23_FLEET_SOCK", "/tmp/k23d.sock");
  config.tenant = env_string("K23_FLEET_TENANT", "default");
  return config;
}

Status FleetClient::init(const FleetClientConfig& config) {
  if (!config.enabled) return Status::ok();
  if (g_state.load(std::memory_order_acquire) != nullptr) {
    return Status::fail("fleet: already initialized", EBUSY);
  }
  if (config.sock.empty()) {
    return Status::fail("fleet: empty socket path", EINVAL);
  }
  auto* s = new ClientState();
  s->config = config;
  set_tenant(s->tenant, config.tenant.c_str());
  // Synchronous and fail-fast: a missing or dead supervisor costs one
  // bounded connect attempt, never blocks startup, and leaves the
  // process un-supervised (the caller reports one degradation event).
  if (Status st = register_with_supervisor(*s); !st.is_ok()) {
    delete s;
    return st;
  }
  g_state.store(s, std::memory_order_release);
  apply_slow(*s, s->global.load(std::memory_order_acquire));
  apply_toggles(*s);
  s->hook_handle = Dispatcher::instance().register_hook(
      hook_priority::kFleet, &FleetClient::hook, nullptr);
  if (s->hook_handle == 0) {
    ::close(s->sock_fd);
    s->sock_fd = -1;
    g_state.store(nullptr, std::memory_order_release);  // state retired
    return Status::fail("fleet: hook chain full", ENOSPC);
  }
  internal::set_fleet_hooks(&child_mark_stale, &child_reregister);
  start_publisher(*s);
  return Status::ok();
}

void FleetClient::shutdown() {
  ClientState* s = g_state.load(std::memory_order_acquire);
  if (s == nullptr) return;
  s->stop.store(true, std::memory_order_release);
  if (s->publisher_running.load(std::memory_order_acquire)) {
    ::pthread_join(s->publisher_tid, nullptr);
    s->publisher_running.store(false, std::memory_order_release);
  }
  if (s->hook_handle != 0) {
    Dispatcher::instance().unregister_hook(s->hook_handle);
    s->hook_handle = 0;
  }
  internal::set_fleet_hooks(nullptr, nullptr);
  if (s->sock_fd >= 0) {
    ::close(s->sock_fd);
    s->sock_fd = -1;
  }
  s->global.store(nullptr, std::memory_order_release);
  s->worker.store(nullptr, std::memory_order_release);
  // The state block and the segment mappings are retired, never freed:
  // a reader inside a signal handler may still hold them.
  g_state.store(nullptr, std::memory_order_release);
}

bool FleetClient::active() {
  ClientState* s = g_state.load(std::memory_order_acquire);
  return s != nullptr && s->global.load(std::memory_order_acquire) != nullptr;
}

uint32_t FleetClient::applied_generation() {
  ClientState* s = g_state.load(std::memory_order_acquire);
  if (s == nullptr) return 0;
  AppliedConfig* ac = s->applied.load(std::memory_order_acquire);
  return ac != nullptr ? ac->generation : 0;
}

GlobalSegment* FleetClient::global_segment() {
  ClientState* s = g_state.load(std::memory_order_acquire);
  return s != nullptr ? s->global.load(std::memory_order_acquire) : nullptr;
}

WorkerSegment* FleetClient::worker_segment() {
  ClientState* s = g_state.load(std::memory_order_acquire);
  return s != nullptr ? s->worker.load(std::memory_order_acquire) : nullptr;
}

HookResult FleetClient::hook(void* /*user*/, SyscallArgs& args,
                             const HookContext& ctx) {
  ClientState* sp = g_state.load(std::memory_order_acquire);
  if (sp == nullptr) return HookResult::passthrough();
  ClientState& s = *sp;
  GlobalSegment* g = s.global.load(std::memory_order_acquire);
  if (g == nullptr) return HookResult::passthrough();

  // The consult: one acquire load of the seqlock word against the
  // applied generation. An odd (write-in-flight) seq shares its >>1
  // value with the previous even seq, so a publish in progress never
  // triggers the slow path early.
  AppliedConfig* ac = s.applied.load(std::memory_order_acquire);
  const uint32_t gen = g->seq.load(std::memory_order_acquire) >> 1;
  if (__builtin_expect(ac == nullptr || ac->generation != gen, 0)) {
    ac = apply_slow(s, g);
    if (ac == nullptr) return HookResult::passthrough();
  }

  // Observe pass (an earlier entry replaced the call) and the fleet's
  // own maintenance traffic are exempt from verdicts and billing.
  if (ctx.replaced || t_fleet_internal) return HookResult::passthrough();

  const FleetSettings& fs = ac->settings;
  for (uint32_t i = 0; i < fs.rule_count; ++i) {
    const FleetRule& rule = fs.rules[i];
    if (rule.nr != -1 && rule.nr != args.nr) continue;
    if (rule.action == PolicyAction::kAllow) break;  // early accept
    if (deny_exempt(args.nr)) break;
    const int err = rule.errno_value > 0 ? rule.errno_value : EPERM;
    return HookResult::replace(-err);
  }

  if (ac->bucket_index >= 0) {
    TokenBucket& bucket = g->buckets[ac->bucket_index];
    if (bucket.active.load(std::memory_order_relaxed) != 0 &&
        bucket.tokens.fetch_sub(1, std::memory_order_relaxed) <= 0 &&
        !deny_exempt(args.nr)) {
      bucket.denied.fetch_add(1, std::memory_order_relaxed);
      const int err = bucket.errno_value > 0 ? bucket.errno_value : EAGAIN;
      return HookResult::replace(-err);
    }
  }
  return HookResult::passthrough();
}

}  // namespace k23::fleet
