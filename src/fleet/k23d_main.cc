// k23d: the fleet supervisor CLI (DESIGN.md §14).
//
// Foreground daemon by default; the flag forms are one-shot control
// clients that talk to a running daemon over the same socket:
//
//   k23d [--sock=PATH] [--tick-ms=N]   serve (foreground, ^C to stop)
//   k23d --set KEY=VALUE [--sock=..]   push a live config change
//   k23d --stats [--sock=..]           aggregated fleet stats
//   k23d --ping [--sock=..]            liveness probe (exit 0/1)
//   k23d --shutdown [--sock=..]        stop the daemon
#include <signal.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/strings.h"
#include "fleet/proto.h"
#include "fleet/shm.h"
#include "fleet/supervisor.h"

namespace {

constexpr const char* kDefaultSock = "/tmp/k23d.sock";

k23::fleet::Supervisor* g_serving = nullptr;

void handle_signal(int) {
  if (g_serving != nullptr) g_serving->stop();
}

int usage(int rc) {
  std::fprintf(
      rc == 0 ? stdout : stderr,
      "usage: k23d [--sock=PATH] [--tick-ms=N]        serve (foreground)\n"
      "       k23d --set KEY=VALUE [--sock=PATH]      live config push\n"
      "         keys: publish_ms=N  accel=on|off  batch=on|off\n"
      "               deny=NR[:ERRNO][,...]  ('deny=' clears, NR -1 = any)\n"
      "               quota=TENANT:RATE:BURST[:ERRNO]  (RATE 0 removes)\n"
      "       k23d --stats [--sock=PATH]              aggregated stats\n"
      "       k23d --ping [--sock=PATH]               liveness probe\n"
      "       k23d --shutdown [--sock=PATH]           stop the daemon\n");
  return rc;
}

// One-shot control round trip. Prints the reply payload for --stats.
int control(const std::string& sock, k23::fleet::MsgKind kind,
            const std::string& payload) {
  using namespace k23::fleet;
  auto fd = connect_unix(sock, 2000);
  if (!fd.is_ok()) {
    std::fprintf(stderr, "k23d: %s: %s\n", sock.c_str(),
                 fd.message().c_str());
    return 1;
  }
  if (k23::Status st =
          send_message(fd.value(), kind, payload.data(),
                       static_cast<uint32_t>(payload.size()), nullptr, 0,
                       2000);
      !st.is_ok()) {
    std::fprintf(stderr, "k23d: send: %s\n", st.message().c_str());
    ::close(fd.value());
    return 1;
  }
  auto reply = recv_message(fd.value(), 5000);
  ::close(fd.value());
  if (!reply.is_ok()) {
    std::fprintf(stderr, "k23d: recv: %s\n", reply.message().c_str());
    return 1;
  }
  Message& m = reply.value();
  m.close_fds();
  switch (m.kind) {
    case MsgKind::kSetReply: {
      SetReply r{};
      if (m.payload.size() >= sizeof(r)) {
        std::memcpy(&r, m.payload.data(), sizeof(r));
      }
      if (r.status != 0) {
        std::fprintf(stderr, "k23d: rejected: %s\n", std::strerror(r.status));
        return 1;
      }
      std::printf("generation=%u\n", r.generation);
      return 0;
    }
    case MsgKind::kStatsReply:
      std::fwrite(m.payload.data(), 1, m.payload.size(), stdout);
      return 0;
    case MsgKind::kPong:
      std::printf("ok\n");
      return 0;
    default:
      std::fprintf(stderr, "k23d: unexpected reply kind %u\n",
                   static_cast<unsigned>(m.kind));
      return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string sock = kDefaultSock;
  std::string set_kv;
  uint32_t tick_ms = 50;
  enum class Cmd { kServe, kSet, kStats, kPing, kShutdown } cmd = Cmd::kServe;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (k23::starts_with(arg, "--sock=")) {
      sock = std::string(arg.substr(7));
    } else if (k23::starts_with(arg, "--tick-ms=")) {
      auto v = k23::parse_u64(arg.substr(10), 10);
      if (!v || *v == 0 || *v > 10000) return usage(2);
      tick_ms = static_cast<uint32_t>(*v);
    } else if (arg == "--set") {
      if (i + 1 >= argc) return usage(2);
      cmd = Cmd::kSet;
      set_kv = argv[++i];
    } else if (k23::starts_with(arg, "--set=")) {
      cmd = Cmd::kSet;
      set_kv = std::string(arg.substr(6));
    } else if (arg == "--stats") {
      cmd = Cmd::kStats;
    } else if (arg == "--ping") {
      cmd = Cmd::kPing;
    } else if (arg == "--shutdown") {
      cmd = Cmd::kShutdown;
    } else {
      std::fprintf(stderr, "k23d: unknown argument '%s'\n", argv[i]);
      return usage(2);
    }
  }

  switch (cmd) {
    case Cmd::kSet:
      return control(sock, k23::fleet::MsgKind::kSet, set_kv);
    case Cmd::kStats:
      return control(sock, k23::fleet::MsgKind::kStats, "");
    case Cmd::kPing:
      return control(sock, k23::fleet::MsgKind::kPing, "");
    case Cmd::kShutdown:
      return control(sock, k23::fleet::MsgKind::kShutdown, "");
    case Cmd::kServe:
      break;
  }

  k23::fleet::SupervisorOptions options;
  options.sock = sock;
  options.tick_ms = tick_ms;
  k23::fleet::Supervisor supervisor(std::move(options));
  if (k23::Status st = supervisor.init(); !st.is_ok()) {
    std::fprintf(stderr, "k23d: %s\n", st.message().c_str());
    return 1;
  }
  g_serving = &supervisor;
  ::signal(SIGINT, &handle_signal);
  ::signal(SIGTERM, &handle_signal);
  std::fprintf(stderr, "k23d: serving on %s (generation %u)\n", sock.c_str(),
               supervisor.generation());
  supervisor.run();
  g_serving = nullptr;
  return 0;
}
