// Segment and socket plumbing for the fleet layer: memfd-backed shared
// segments, SCM_RIGHTS fd passing, and deadline-bounded framed I/O over
// the supervisor's Unix socket.
//
// Everything here runs in ordinary thread context (registration,
// supervisor event loop, publisher thread) — never from the SIGSYS
// dispatch path — so plain libc calls are fine; in a worker they are
// simply interposed traffic like any other.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "fleet/proto.h"

namespace k23::fleet {

// A memfd-backed anonymous segment of `size` bytes, zero-filled, named
// "k23.fleet.<tag>" (the PID tag makes segments attributable in
// /proc/<pid>/fd and /proc/<pid>/maps, the way PR 3's log shards are
// attributable by filename). Falls back to an unlinked tmp file when the
// kernel lacks memfd_create.
Result<int> create_segment(const char* tag, size_t size);

// Maps `size` bytes of `fd` shared read-write. The fd stays open (and is
// the segment's lifetime anchor once the path-less memfd is shared).
Result<void*> map_segment(int fd, size_t size);

// Validates a mapped segment header (magic + version). `what` labels the
// error.
Status validate_segment(const void* base, const char* what);

// --- unix socket ------------------------------------------------------------

// Binds and listens on `path`. A stale socket file (no listener behind
// it) is silently taken over; a live listener is an error — exactly one
// supervisor per socket.
Result<int> listen_unix(const std::string& path);

// Connects to `path` with a hard deadline. A dead supervisor must cost
// one fast ECONNREFUSED, never a hang: the connect is non-blocking and
// polled, and the socket is returned still non-blocking.
Result<int> connect_unix(const std::string& path, int timeout_ms);

// --- framed messages --------------------------------------------------------

struct Message {
  MsgKind kind = MsgKind::kPing;
  std::string payload;
  int fds[2] = {-1, -1};
  int fd_count = 0;

  void close_fds();
};

// Sends header + payload (+ optional fds on the first byte) within
// `timeout_ms`. Handles short writes; EPIPE/reset surface as errors.
Status send_message(int fd, MsgKind kind, const void* payload, uint32_t length,
                    const int* fds, int fd_count, int timeout_ms);

// Receives one framed message within `timeout_ms`. Payloads above
// kMaxPayload are rejected. EOF surfaces as ECONNRESET.
Result<Message> recv_message(int fd, int timeout_ms);

}  // namespace k23::fleet
