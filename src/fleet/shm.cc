#include "fleet/shm.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace k23::fleet {
namespace {

int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Polls `fd` for `events` until the absolute deadline. Returns 0 on
// ready, -errno on timeout/error.
int poll_until(int fd, short events, int64_t deadline_ms) {
  for (;;) {
    const int64_t left = deadline_ms - now_ms();
    if (left <= 0) return -ETIMEDOUT;
    struct pollfd p = {fd, events, 0};
    const int rc = ::poll(&p, 1, static_cast<int>(left));
    if (rc > 0) return 0;
    if (rc == 0) return -ETIMEDOUT;
    if (errno != EINTR) return -errno;
  }
}

}  // namespace

Result<int> create_segment(const char* tag, size_t size) {
  char name[64];
  std::snprintf(name, sizeof(name), "k23.fleet.%s", tag);
  int fd = static_cast<int>(
      ::syscall(SYS_memfd_create, name, static_cast<unsigned>(MFD_CLOEXEC)));
  if (fd < 0 && (errno == ENOSYS || errno == EPERM)) {
    // Pre-memfd kernel (or a seccomp'd runner): an unlinked tmp file has
    // the same anonymous-once-shared lifetime, just a slower first touch.
    char path[128];
    std::snprintf(path, sizeof(path), "/tmp/%s.%d.XXXXXX", name, ::getpid());
    fd = ::mkstemp(path);
    if (fd >= 0) {
      ::unlink(path);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
  }
  if (fd < 0) return Result<int>::from_errno("fleet: create segment");
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return Result<int>::from_errno("fleet: size segment");
  }
  return fd;
}

Result<void*> map_segment(int fd, size_t size) {
  void* base =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    return Result<void*>::from_errno("fleet: map segment");
  }
  return base;
}

Status validate_segment(const void* base, const char* what) {
  uint64_t magic = 0;
  uint32_t version = 0;
  std::memcpy(&magic, base, sizeof(magic));
  std::memcpy(&version, static_cast<const char*>(base) + sizeof(magic),
              sizeof(version));
  if (magic != kSegmentMagic) return Status::fail(what, EBADMSG);
  if (version != kProtoVersion) return Status::fail(what, EPROTO);
  return Status::ok();
}

Result<int> listen_unix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Result<int>(Error{ENAMETOOLONG, "fleet: socket path"});
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  for (int attempt = 0; attempt < 2; ++attempt) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return Result<int>::from_errno("fleet: socket");
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      if (::listen(fd, 128) != 0) {
        const int saved = errno;
        ::close(fd);
        return Result<int>(Error{saved, "fleet: listen"});
      }
      return fd;
    }
    const int bind_errno = errno;
    ::close(fd);
    if (bind_errno != EADDRINUSE || attempt == 1) {
      return Result<int>(Error{bind_errno, "fleet: bind"});
    }
    // EADDRINUSE: either a live supervisor (error out — one per socket)
    // or the stale file of a dead one (take it over). A short connect
    // probe tells them apart.
    auto probe = connect_unix(path, 200);
    if (probe.is_ok()) {
      ::close(probe.value());
      return Result<int>(Error{EADDRINUSE, "fleet: supervisor already bound"});
    }
    ::unlink(path.c_str());
  }
  return Result<int>(Error{EADDRINUSE, "fleet: bind"});
}

Result<int> connect_unix(const std::string& path, int timeout_ms) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Result<int>(Error{ENAMETOOLONG, "fleet: socket path"});
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) return Result<int>::from_errno("fleet: socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    return fd;
  }
  if (errno != EINPROGRESS && errno != EAGAIN) {
    // ENOENT / ECONNREFUSED: no supervisor (or a stale socket file) —
    // the fail-fast path the preload depends on.
    const int saved = errno;
    ::close(fd);
    return Result<int>(Error{saved, "fleet: connect"});
  }
  const int64_t deadline = now_ms() + timeout_ms;
  const int rc = poll_until(fd, POLLOUT, deadline);
  if (rc != 0) {
    ::close(fd);
    return Result<int>(Error{-rc, "fleet: connect"});
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    const int saved = err != 0 ? err : errno;
    ::close(fd);
    return Result<int>(Error{saved, "fleet: connect"});
  }
  return fd;
}

void Message::close_fds() {
  for (int i = 0; i < fd_count; ++i) {
    if (fds[i] >= 0) ::close(fds[i]);
    fds[i] = -1;
  }
  fd_count = 0;
}

Status send_message(int fd, MsgKind kind, const void* payload, uint32_t length,
                    const int* fds, int fd_count, int timeout_ms) {
  if (length > kMaxPayload) return Status::fail("fleet: payload", EMSGSIZE);
  MsgHeader header{static_cast<uint32_t>(kind), length};

  // Header and payload go out as one buffer so the SCM_RIGHTS ancillary
  // data rides the first byte of the frame.
  std::string frame(sizeof(header) + length, '\0');
  std::memcpy(frame.data(), &header, sizeof(header));
  if (length != 0) std::memcpy(frame.data() + sizeof(header), payload, length);

  const int64_t deadline = now_ms() + timeout_ms;
  size_t sent = 0;
  bool fds_pending = fd_count > 0;
  while (sent < frame.size()) {
    struct iovec iov = {frame.data() + sent, frame.size() - sent};
    struct msghdr msg {};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int) * 2)] = {};
    if (fds_pending) {
      msg.msg_control = control;
      msg.msg_controllen = CMSG_SPACE(sizeof(int) * fd_count);
      cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
      cmsg->cmsg_level = SOL_SOCKET;
      cmsg->cmsg_type = SCM_RIGHTS;
      cmsg->cmsg_len = CMSG_LEN(sizeof(int) * fd_count);
      std::memcpy(CMSG_DATA(cmsg), fds,
                  sizeof(int) * static_cast<size_t>(fd_count));
    }
    const ssize_t rc = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      fds_pending = false;
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (int perr = poll_until(fd, POLLOUT, deadline); perr != 0) {
        return Status::fail("fleet: send", -perr);
      }
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return Status::from_errno("fleet: send");
  }
  return Status::ok();
}

Result<Message> recv_message(int fd, int timeout_ms) {
  const int64_t deadline = now_ms() + timeout_ms;
  Message out;

  // The header read also collects any SCM_RIGHTS payload (senders attach
  // fds to the frame's first byte).
  MsgHeader header{};
  size_t got = 0;
  while (got < sizeof(header)) {
    struct iovec iov = {reinterpret_cast<char*>(&header) + got,
                        sizeof(header) - got};
    struct msghdr msg {};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int) * 2)] = {};
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);
    const ssize_t rc = ::recvmsg(fd, &msg, MSG_CMSG_CLOEXEC);
    if (rc > 0) {
      got += static_cast<size_t>(rc);
      for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
           cmsg = CMSG_NXTHDR(&msg, cmsg)) {
        if (cmsg->cmsg_level != SOL_SOCKET || cmsg->cmsg_type != SCM_RIGHTS) {
          continue;
        }
        const int nfds = static_cast<int>(
            (cmsg->cmsg_len - CMSG_LEN(0)) / sizeof(int));
        for (int i = 0; i < nfds; ++i) {
          int passed = -1;
          std::memcpy(&passed, CMSG_DATA(cmsg) + i * sizeof(int),
                      sizeof(int));
          if (out.fd_count < 2) {
            out.fds[out.fd_count++] = passed;
          } else {
            ::close(passed);  // protocol only ever passes two
          }
        }
      }
      continue;
    }
    if (rc == 0) {
      out.close_fds();
      return Result<Message>(Error{ECONNRESET, "fleet: peer closed"});
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (int perr = poll_until(fd, POLLIN, deadline); perr != 0) {
        out.close_fds();
        return Result<Message>(Error{-perr, "fleet: recv"});
      }
      continue;
    }
    if (errno == EINTR) continue;
    out.close_fds();
    return Result<Message>::from_errno("fleet: recv");
  }

  out.kind = static_cast<MsgKind>(header.kind);
  if (header.length > kMaxPayload) {
    out.close_fds();
    return Result<Message>(Error{EMSGSIZE, "fleet: oversized payload"});
  }
  out.payload.resize(header.length);
  size_t body = 0;
  while (body < header.length) {
    const ssize_t rc =
        ::recv(fd, out.payload.data() + body, header.length - body, 0);
    if (rc > 0) {
      body += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) {
      out.close_fds();
      return Result<Message>(Error{ECONNRESET, "fleet: peer closed"});
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (int perr = poll_until(fd, POLLIN, deadline); perr != 0) {
        out.close_fds();
        return Result<Message>(Error{-perr, "fleet: recv"});
      }
      continue;
    }
    if (errno == EINTR) continue;
    out.close_fds();
    return Result<Message>::from_errno("fleet: recv");
  }
  return out;
}

}  // namespace k23::fleet
