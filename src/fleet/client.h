// Worker-side fleet client (DESIGN.md §14).
//
// Linked into the preload: registers this process with the k23d
// supervisor at startup, maps the global (config + quota) and per-worker
// (identity + stats) shared segments, installs the consult entry at
// hook_priority::kFleet, and runs a publisher thread that ships stats,
// heartbeats, applies config for idle workers, and re-attaches after a
// supervisor restart.
//
// Cost contract (ISSUE 9 / bench_fleet):
//  * K23_FLEET=off (the default): nothing happens — no hook, no thread,
//    no syscall;
//  * a dead/missing supervisor with K23_FLEET=on: one fast failed
//    connect at init (hard deadline, never a hang), one
//    DegradationReport event, then the process runs un-supervised;
//  * supervised steady state: the per-syscall consult is one acquire
//    load of the segment pointer plus one acquire load of the seqlock
//    word compared against the applied generation — low double-digit
//    nanoseconds. The settings copy-out happens only on a generation
//    change, under an atomic_flag try-lock so exactly one thread pays
//    it and the rest proceed on the previous snapshot.
#pragma once

#include <string>

#include "common/result.h"
#include "fleet/proto.h"
#include "interpose/dispatch.h"

namespace k23::fleet {

struct FleetClientConfig {
  bool enabled = false;      // K23_FLEET, off by default: opt-in layer
  std::string sock;          // K23_FLEET_SOCK
  std::string tenant;        // K23_FLEET_TENANT
  int connect_timeout_ms = 500;
  // Parses K23_FLEET / K23_FLEET_SOCK / K23_FLEET_TENANT (see
  // common/env.h grammar table).
  static FleetClientConfig from_env();
};

class FleetClient {
 public:
  // Registers with the supervisor (synchronous, fail-fast: a dead
  // socket costs one bounded connect attempt), maps the segments,
  // installs the kFleet chain entry and starts the publisher thread.
  // enabled=false is a zero-cost ok. A returned error means the process
  // runs un-supervised; the caller reports it as one degradation event
  // and must not treat it as fatal.
  static Status init(const FleetClientConfig& config);

  // Stops the publisher, removes the chain entry and fork hooks, closes
  // the socket. Segment mappings are retired, never unmapped — a stalled
  // reader inside a signal handler may still hold the pointer (the same
  // retire-never-free rule as dispatcher Config snapshots).
  static void shutdown();

  static bool active();      // registered and consulting a live segment
  // The config generation this process last applied (0 = none).
  static uint32_t applied_generation();

  // The chain entry, exposed for tests and benchmarks that build their
  // own chain. Obeys the SIGSYS-safety rules (DESIGN.md §10).
  static HookResult hook(void* user, SyscallArgs& args,
                         const HookContext& ctx);

  // Test access to the mapped segments (nullptr when un-supervised).
  static GlobalSegment* global_segment();
  static WorkerSegment* worker_segment();
};

}  // namespace k23::fleet
