#include "fleet/supervisor.h"

#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"
#include "fleet/shm.h"
#include "k23/process_tree.h"

namespace k23::fleet {
namespace {

int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct Supervisor::Connection {
  int fd = -1;
  // Set by a successful kRegister; a connection that dies before (or
  // mid-) registration is just closed — the worker-crash-mid-register
  // case costs the supervisor nothing but the accept.
  bool is_worker = false;
  int32_t pid = 0;
  char tenant[kTenantNameLen] = {};
  int seg_fd = -1;
  WorkerSegment* seg = nullptr;

  ~Connection() {
    if (seg != nullptr) ::munmap(seg, sizeof(WorkerSegment));
    if (seg_fd >= 0) ::close(seg_fd);
    if (fd >= 0) ::close(fd);
  }
};

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {}

Supervisor::~Supervisor() {
  stop();
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    // Only the instance that actually bound may unlink: a failed init
    // against a live supervisor must not yank its socket away.
    ::unlink(options_.sock.c_str());
  }
  if (global_ != nullptr) ::munmap(global_, sizeof(GlobalSegment));
  if (global_fd_ >= 0) ::close(global_fd_);
}

Status Supervisor::init() {
  if (options_.sock.empty()) return Status::fail("fleet: no socket path");
  auto listener = listen_unix(options_.sock);
  if (!listener.is_ok()) return listener.status();
  listen_fd_ = listener.value();

  auto fd = create_segment("global", sizeof(GlobalSegment));
  if (!fd.is_ok()) return fd.status();
  global_fd_ = fd.value();
  auto base = map_segment(global_fd_, sizeof(GlobalSegment));
  if (!base.is_ok()) return base.status();
  global_ = new (base.value()) GlobalSegment();

  // Generation 1 is the first published config; generation 0 means "a
  // segment nobody has written yet" and is never observed by a worker.
  settings_ = options_.initial;
  seqlock_publish(global_->seq, global_->settings,
                  [&](FleetSettings& dst) { dst = settings_; });
  last_refill_ms_ = now_ms();
  return Status::ok();
}

void Supervisor::run() {
  running_.store(true, std::memory_order_release);
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fds.reserve(conns_.size() + 1);
      fds.push_back({listen_fd_, POLLIN, 0});
      for (const auto& conn : conns_) fds.push_back({conn->fd, POLLIN, 0});
    }
    const int rc =
        ::poll(fds.data(), fds.size(), static_cast<int>(options_.tick_ms));
    if (rc < 0 && errno != EINTR) break;

    if (fds[0].revents & POLLIN) {
      const int conn_fd =
          ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
      if (conn_fd >= 0) {
        std::lock_guard<std::mutex> lock(mu_);
        auto conn = std::make_unique<Connection>();
        conn->fd = conn_fd;
        conns_.push_back(std::move(conn));
      }
    }
    // Walk backwards: handle_message/drop may erase the entry. The fds
    // vector indexes conns_ as it was when built; dropping only shrinks
    // the tail we have already visited.
    for (size_t i = fds.size(); i-- > 1;) {
      if (fds[i].revents == 0) continue;
      const size_t conn_index = i - 1;
      std::lock_guard<std::mutex> lock(mu_);
      if (conn_index >= conns_.size()) continue;
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        handle_message(*conns_[conn_index]);
        if (conns_[conn_index]->fd < 0) drop_connection(conn_index);
      }
    }
    refill_buckets();
  }
  running_.store(false, std::memory_order_release);
}

Status Supervisor::run_in_thread() {
  if (Status st = init(); !st.is_ok()) return st;
  thread_ = std::thread([this] { run(); });
  return Status::ok();
}

void Supervisor::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void Supervisor::handle_message(Connection& conn) {
  auto msg = recv_message(conn.fd, 1000);
  if (!msg.is_ok()) {
    // EOF or a torn frame: a worker died (possibly mid-registration) or
    // a controller hung up. Mark the fd dead; the caller drops it.
    ::close(conn.fd);
    conn.fd = -1;
    return;
  }
  Message& m = msg.value();
  m.close_fds();  // no inbound message legitimately carries fds
  switch (m.kind) {
    case MsgKind::kRegister:
      handle_register(conn, m.payload);
      break;
    case MsgKind::kSet: {
      SetReply reply{};
      Status st = apply_set_locked(m.payload, &reply.generation);
      reply.status = st.is_ok() ? 0 : (st.error().code > 0 ? st.error().code
                                                           : EINVAL);
      if (!st.is_ok()) {
        K23_LOG(kWarn) << "k23d: rejected set '" << m.payload
                       << "': " << st.message();
      }
      (void)send_message(conn.fd, MsgKind::kSetReply, &reply, sizeof(reply),
                         nullptr, 0, 1000);
      break;
    }
    case MsgKind::kStats: {
      const std::string text = stats_text_locked();
      (void)send_message(conn.fd, MsgKind::kStatsReply, text.data(),
                         static_cast<uint32_t>(
                             std::min<size_t>(text.size(), kMaxPayload)),
                         nullptr, 0, 2000);
      break;
    }
    case MsgKind::kPing:
      (void)send_message(conn.fd, MsgKind::kPong, nullptr, 0, nullptr, 0,
                         1000);
      break;
    case MsgKind::kShutdown: {
      SetReply reply{0, generation()};
      (void)send_message(conn.fd, MsgKind::kSetReply, &reply, sizeof(reply),
                         nullptr, 0, 1000);
      stop_.store(true, std::memory_order_release);
      break;
    }
    default:
      ::close(conn.fd);
      conn.fd = -1;
      break;
  }
}

void Supervisor::handle_register(Connection& conn, const std::string& payload) {
  RegisterRequest req{};
  RegisterReply reply{};
  if (payload.size() < sizeof(req)) {
    reply.status = EBADMSG;
    (void)send_message(conn.fd, MsgKind::kRegisterReply, &reply, sizeof(reply),
                       nullptr, 0, 1000);
    return;
  }
  std::memcpy(&req, payload.data(), sizeof(req));
  if (req.magic != kSegmentMagic || req.version != kProtoVersion) {
    reply.status = EPROTO;
    (void)send_message(conn.fd, MsgKind::kRegisterReply, &reply, sizeof(reply),
                       nullptr, 0, 1000);
    return;
  }

  char tag[32];
  std::snprintf(tag, sizeof(tag), "%d", req.pid);
  auto seg_fd = create_segment(tag, sizeof(WorkerSegment));
  if (seg_fd.is_ok()) {
    auto base = map_segment(seg_fd.value(), sizeof(WorkerSegment));
    if (base.is_ok()) {
      auto* seg = new (base.value()) WorkerSegment();
      seg->pid = req.pid;
      std::memcpy(seg->tenant, req.tenant, kTenantNameLen);
      seg->tenant[kTenantNameLen - 1] = '\0';
      conn.seg = seg;
      conn.seg_fd = seg_fd.value();
    } else {
      ::close(seg_fd.value());
      reply.status = base.error().code;
    }
  } else {
    reply.status = seg_fd.error().code;
  }

  if (conn.seg == nullptr) {
    (void)send_message(conn.fd, MsgKind::kRegisterReply, &reply, sizeof(reply),
                       nullptr, 0, 1000);
    return;
  }
  reply.generation = generation();
  const int fds[2] = {global_fd_, conn.seg_fd};
  if (!send_message(conn.fd, MsgKind::kRegisterReply, &reply, sizeof(reply),
                    fds, 2, 1000)
           .is_ok()) {
    ::close(conn.fd);
    conn.fd = -1;
    return;
  }
  conn.is_worker = true;
  conn.pid = req.pid;
  std::memcpy(conn.tenant, req.tenant, kTenantNameLen);
}

void Supervisor::drop_connection(size_t index) {
  conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(index));
}

// --- config mutations -------------------------------------------------------

Status Supervisor::set_rules(const std::string& spec) {
  FleetSettings next = settings_;
  next.rule_count = 0;
  if (!spec.empty()) {
    for (std::string_view item : split(spec, ',')) {
      if (next.rule_count >= kMaxFleetRules) {
        return Status::fail("fleet: too many rules", E2BIG);
      }
      FleetRule rule;
      const size_t colon = item.find(':');
      auto nr = parse_i64(colon == std::string_view::npos
                              ? item
                              : item.substr(0, colon));
      if (!nr) return Status::fail("fleet: bad deny nr", EINVAL);
      rule.nr = static_cast<int32_t>(*nr);
      if (colon != std::string_view::npos) {
        auto err = parse_u64(item.substr(colon + 1), 10);
        if (!err || *err == 0 || *err > 4095) {
          return Status::fail("fleet: bad deny errno", EINVAL);
        }
        rule.errno_value = static_cast<int32_t>(*err);
      }
      next.rules[next.rule_count++] = rule;
    }
  }
  settings_ = next;
  return Status::ok();
}

Status Supervisor::set_quota(const std::string& spec) {
  // TENANT:RATE:BURST[:ERRNO]; RATE 0 removes the bucket.
  const auto parts = split(spec, ':');
  if (parts.size() < 2 || parts[0].empty() ||
      parts[0].size() >= kTenantNameLen) {
    return Status::fail("fleet: bad quota tenant", EINVAL);
  }
  auto rate = parse_u64(parts[1], 10);
  if (!rate) return Status::fail("fleet: bad quota rate", EINVAL);

  int slot = -1, free_slot = -1;
  for (size_t i = 0; i < kMaxTenants; ++i) {
    TokenBucket& b = global_->buckets[i];
    if (b.active.load(std::memory_order_acquire) != 0) {
      if (parts[0] == b.tenant) {
        slot = static_cast<int>(i);
        break;
      }
    } else if (free_slot < 0) {
      free_slot = static_cast<int>(i);
    }
  }
  if (*rate == 0) {
    if (slot >= 0) {
      global_->buckets[slot].active.store(0, std::memory_order_release);
    }
    return Status::ok();
  }
  if (parts.size() < 3) return Status::fail("fleet: quota needs burst", EINVAL);
  auto burst = parse_u64(parts[2], 10);
  if (!burst || *burst == 0) {
    return Status::fail("fleet: bad quota burst", EINVAL);
  }
  int errno_value = EAGAIN;
  if (parts.size() >= 4) {
    auto err = parse_u64(parts[3], 10);
    if (!err || *err == 0 || *err > 4095) {
      return Status::fail("fleet: bad quota errno", EINVAL);
    }
    errno_value = static_cast<int>(*err);
  }
  if (slot < 0) slot = free_slot;
  if (slot < 0) return Status::fail("fleet: tenant table full", E2BIG);

  TokenBucket& b = global_->buckets[slot];
  // Deactivate while rewriting so a worker scanning slots never matches
  // a half-written tenant name.
  b.active.store(0, std::memory_order_release);
  std::memset(b.tenant, 0, kTenantNameLen);
  std::memcpy(b.tenant, parts[0].data(), parts[0].size());
  b.errno_value = errno_value;
  b.rate_per_sec = *rate;
  b.burst = *burst;
  b.tokens.store(static_cast<int64_t>(*burst), std::memory_order_relaxed);
  refill_carry_[slot] = 0;
  b.active.store(1, std::memory_order_release);
  return Status::ok();
}

Status Supervisor::apply_set(const std::string& kv, uint32_t* generation_out) {
  std::lock_guard<std::mutex> lock(mu_);
  return apply_set_locked(kv, generation_out);
}

Status Supervisor::apply_set_locked(const std::string& kv,
                                    uint32_t* generation_out) {
  const size_t eq = kv.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::fail("fleet: set wants key=value", EINVAL);
  }
  const std::string key = kv.substr(0, eq);
  const std::string value = kv.substr(eq + 1);
  Status st = Status::ok();
  if (key == "publish_ms") {
    auto ms = parse_u64(value, 10);
    if (!ms || *ms < 10 || *ms > 60000) {
      st = Status::fail("fleet: publish_ms out of range", EINVAL);
    } else {
      settings_.publish_ms = static_cast<uint32_t>(*ms);
    }
  } else if (key == "accel") {
    settings_.accel_off = (value == "off" || value == "0") ? 1 : 0;
  } else if (key == "batch") {
    settings_.batch_off = (value == "off" || value == "0") ? 1 : 0;
  } else if (key == "deny") {
    st = set_rules(value);
  } else if (key == "quota") {
    st = set_quota(value);
  } else {
    st = Status::fail("fleet: unknown set key", EINVAL);
  }
  if (!st.is_ok()) return st;
  // Every accepted set republishes, even when only the bucket page
  // changed: the generation bump is what makes workers rescan their
  // tenant's bucket slot.
  seqlock_publish(global_->seq, global_->settings,
                  [&](FleetSettings& dst) { dst = settings_; });
  if (generation_out != nullptr) *generation_out = generation();
  return Status::ok();
}

void Supervisor::refill_buckets() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = now_ms();
  const int64_t elapsed = now - last_refill_ms_;
  if (elapsed <= 0) return;
  last_refill_ms_ = now;
  for (size_t i = 0; i < kMaxTenants; ++i) {
    TokenBucket& b = global_->buckets[i];
    if (b.active.load(std::memory_order_acquire) == 0) continue;
    const uint64_t due =
        b.rate_per_sec * static_cast<uint64_t>(elapsed) + refill_carry_[i];
    refill_carry_[i] = due % 1000;
    const int64_t add = static_cast<int64_t>(due / 1000);
    if (add == 0) continue;
    // fetch_add + clamp instead of load/store: concurrent worker
    // fetch_subs must not be overwritten, and an over-clamp store only
    // ever forgives a few tokens.
    const int64_t after = b.tokens.fetch_add(add, std::memory_order_relaxed) +
                          add;
    if (after > static_cast<int64_t>(b.burst)) {
      b.tokens.store(static_cast<int64_t>(b.burst),
                     std::memory_order_relaxed);
    }
  }
}

// --- stats ------------------------------------------------------------------

std::string Supervisor::stats_text() {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_text_locked();
}

std::string Supervisor::stats_text_locked() {
  std::string out = "k23d: generation=" + std::to_string(generation()) +
                    " workers=" + std::to_string([&] {
                      size_t n = 0;
                      for (const auto& c : conns_) n += c->is_worker ? 1 : 0;
                      return n;
                    }()) +
                    "\n";
  ProcessStatsDump aggregate;
  size_t parsed = 0;
  std::vector<char> text(kStatsAreaBytes);
  for (const auto& conn : conns_) {
    if (!conn->is_worker || conn->seg == nullptr) continue;
    const WorkerSegment& seg = *conn->seg;
    out += "worker pid=" + std::to_string(seg.pid) + " tenant=" +
           std::string(seg.tenant) + " gen=" +
           std::to_string(
               seg.observed_generation.load(std::memory_order_acquire)) +
           " heartbeat=" +
           std::to_string(seg.heartbeat.load(std::memory_order_acquire));
    // Snapshot the worker's published stats dump (v2 text) and fold it
    // into the fleet aggregate with the post-mortem parser.
    WorkerStatsView view{};
    if (snapshot_worker_stats(seg, text.data(), text.size(), &view)) {
      auto dump = ProcessTree::parse_stats_dump(
          std::string(text.data(), view.length));
      if (dump.is_ok()) {
        ++parsed;
        const ProcessStatsDump& d = dump.value();
        out += " syscalls=" + std::to_string(d.total) +
               " accelerated=" + std::to_string(d.accelerated) +
               " batched=" + std::to_string(d.batched);
        aggregate.total += d.total;
        for (size_t p = 0; p < 4; ++p) aggregate.by_path[p] += d.by_path[p];
        aggregate.accelerated += d.accelerated;
        aggregate.batched += d.batched;
        aggregate.flushed += d.flushed;
        aggregate.promoted += d.promoted;
      }
    }
    out += "\n";
  }
  for (size_t i = 0; i < kMaxTenants; ++i) {
    const TokenBucket& b = global_->buckets[i];
    if (b.active.load(std::memory_order_acquire) == 0) continue;
    out += "tenant " + std::string(b.tenant) +
           ": tokens=" +
           std::to_string(b.tokens.load(std::memory_order_relaxed)) +
           " rate=" + std::to_string(b.rate_per_sec) +
           " burst=" + std::to_string(b.burst) +
           " denied=" + std::to_string(
                            b.denied.load(std::memory_order_relaxed)) +
           "\n";
  }
  out += "fleet: syscalls=" + std::to_string(aggregate.total) +
         " accelerated=" + std::to_string(aggregate.accelerated) +
         " batched=" + std::to_string(aggregate.batched) +
         " promoted=" + std::to_string(aggregate.promoted) +
         " dumps=" + std::to_string(parsed) + "\n";
  return out;
}

uint32_t Supervisor::generation() const {
  return global_ != nullptr ? global_->generation() : 0;
}

size_t Supervisor::worker_count() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& c : conns_) n += c->is_worker ? 1 : 0;
  return n;
}

}  // namespace k23::fleet
