// Fleet protocol: the shared-memory segments and the registration wire
// format spoken between interposed workers and the k23d supervisor
// (DESIGN.md §14).
//
// One supervisor serves thousands of interposed processes on one box.
// All per-syscall traffic stays in shared memory; the Unix socket is
// only the rendezvous (registration, fd passing, control commands) and
// the liveness signal (a worker's death closes its socket, a
// supervisor's death closes all of them).
//
// Two segment kinds, both created by the supervisor and passed to the
// worker as memfds over SCM_RIGHTS:
//
//  * the GLOBAL segment, one per supervisor, mapped by every worker:
//    a seqlock-published FleetSettings block (deny rules, publish
//    period, accel/batch kill switches — the live config push) plus a
//    page of per-tenant token buckets (live atomics, deliberately NOT
//    under the seqlock: quota consumption must not spin on config
//    writers);
//  * one WORKER segment per registered process: identity, the config
//    generation the worker has applied, a heartbeat, and a seqlock'd
//    text area where the worker publishes its serialized stats dump —
//    the same PID-tagged v2 format ProcessTree::serialize_stats_dump()
//    writes post-mortem, so `k23d --stats` aggregates live workers with
//    the parser k23_logmerge already trusts.
//
// The seqlock generation counter doubles as the config generation: the
// published generation is seq >> 1 (an odd seq means a write is in
// flight). The worker's per-syscall consult is one acquire load of the
// seq word compared against the generation it last applied; the copy
// out of the segment happens only when they differ (see client.cc).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "policy/policy.h"

namespace k23::fleet {

inline constexpr uint64_t kSegmentMagic = 0x31746c6664333271ull;  // "q23dflt1"
inline constexpr uint32_t kProtoVersion = 1;

inline constexpr size_t kTenantNameLen = 24;   // NUL-padded, NUL-terminated
inline constexpr size_t kMaxTenants = 16;      // token-bucket page slots
inline constexpr size_t kMaxFleetRules = 16;   // pushed deny/kill rules
inline constexpr size_t kStatsAreaBytes = 16384;

// One centrally pushed syscall rule. Unlike the local policy evaluator
// (policy/policy.h) there is no path matching: fleet rules are the
// coarse, fleet-wide tier ("nobody executes ptrace today"); per-path
// nuance stays with the per-process policy. `action` reuses the local
// PolicyAction verdict vocabulary so k23d and the policy layer agree on
// what a verdict means (kAllow rules act as early-accept overrides).
struct FleetRule {
  int32_t nr = -1;  // -1 = any syscall
  PolicyAction action = PolicyAction::kDeny;
  uint8_t pad[3] = {};
  int32_t errno_value = EPERM;
};
static_assert(sizeof(FleetRule) == 12);

// The seqlock-published half of the global segment. POD on purpose: the
// worker's slow path memcpys it out under the seqlock from SIGSYS
// context — no pointers, no heap, fixed size.
struct FleetSettings {
  uint32_t publish_ms = 500;  // worker stats-publish / heartbeat period
  uint8_t accel_off = 0;      // 1 = force the accel layer off fleet-wide
  uint8_t batch_off = 0;      // 1 = force the batch layer off fleet-wide
  uint8_t pad[2] = {};
  uint32_t rule_count = 0;
  FleetRule rules[kMaxFleetRules] = {};
};

// One per-tenant token bucket. Live atomics shared by every worker of
// the tenant: consumption is a single relaxed fetch_sub on the hot
// path, refill is the supervisor's tick adding rate*dt up to burst.
// Tokens go negative under pressure (cheaper than a CAS loop); the
// refill clamps back. 64-byte aligned so two tenants never share a
// cache line.
struct alignas(64) TokenBucket {
  char tenant[kTenantNameLen] = {};
  std::atomic<uint32_t> active{0};  // 0 = slot free / quota removed
  int32_t errno_value = EAGAIN;     // verdict for an exhausted bucket
  std::atomic<int64_t> tokens{0};
  uint64_t rate_per_sec = 0;
  uint64_t burst = 0;
  std::atomic<uint64_t> denied{0};  // fleet-wide exhaustion count
};
static_assert(sizeof(TokenBucket) == 64);

struct GlobalSegment {
  uint64_t magic = kSegmentMagic;
  uint32_t version = kProtoVersion;
  // Seqlock word for `settings`; published generation = seq >> 1.
  std::atomic<uint32_t> seq{0};
  FleetSettings settings;
  TokenBucket buckets[kMaxTenants];

  uint32_t generation() const {
    return seq.load(std::memory_order_acquire) >> 1;
  }
};

struct WorkerSegment {
  uint64_t magic = kSegmentMagic;
  uint32_t version = kProtoVersion;
  int32_t pid = 0;
  char tenant[kTenantNameLen] = {};
  // The config generation this worker last applied — the smoke test's
  // witness that a live push actually landed everywhere.
  std::atomic<uint32_t> observed_generation{0};
  // Bumped every publisher tick; a frozen heartbeat marks a wedged or
  // stopped worker in `k23d --stats`.
  std::atomic<uint64_t> heartbeat{0};
  std::atomic<uint32_t> stats_seq{0};  // seqlock for the text area
  uint32_t stats_len = 0;
  char stats_text[kStatsAreaBytes] = {};
};

// --- seqlock ----------------------------------------------------------------
//
// Single writer (the supervisor for FleetSettings, the owning worker for
// the stats text). The payload members are plain (non-atomic) on purpose
// — making a 16KB text area atomic-element-wise would wreck both sides —
// so the byte copies here are technical data races that the seqlock
// retry makes benign. They are confined to these two named functions so
// scripts/tsan.supp can suppress exactly them and nothing else.

template <typename Payload, typename Fill>
inline void seqlock_publish(std::atomic<uint32_t>& seq, Payload& dst,
                            Fill&& fill) {
  const uint32_t start = seq.load(std::memory_order_relaxed);
  seq.store(start + 1, std::memory_order_release);  // odd: write in flight
  std::atomic_thread_fence(std::memory_order_release);
  fill(dst);
  seq.store(start + 2, std::memory_order_release);
}

// Copies `src` into `out` consistently. Returns the even sequence value
// the copy was taken at, or UINT32_MAX after `max_tries` collisions with
// the writer (caller keeps its previous snapshot).
template <typename Payload>
inline uint32_t seqlock_snapshot(const std::atomic<uint32_t>& seq,
                                 const Payload& src, Payload* out,
                                 int max_tries = 8) {
  for (int i = 0; i < max_tries; ++i) {
    const uint32_t before = seq.load(std::memory_order_acquire);
    if (before & 1u) continue;
    std::memcpy(out, &src, sizeof(Payload));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq.load(std::memory_order_relaxed) == before) return before;
  }
  return UINT32_MAX;
}

// Worker-stats flavor of the same seqlock: the text area has a length
// that travels under the lock with the bytes. Same benign-race contract
// as above (named functions, single writer = the owning worker).

struct WorkerStatsView {
  uint32_t seq = 0;
  uint32_t length = 0;
};

inline void publish_worker_stats(WorkerSegment& seg, const char* text,
                                 size_t len) {
  if (len > kStatsAreaBytes) len = kStatsAreaBytes;
  const uint32_t start = seg.stats_seq.load(std::memory_order_relaxed);
  seg.stats_seq.store(start + 1, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_release);
  seg.stats_len = static_cast<uint32_t>(len);
  std::memcpy(seg.stats_text, text, len);
  seg.stats_seq.store(start + 2, std::memory_order_release);
}

inline bool snapshot_worker_stats(const WorkerSegment& seg, char* buf,
                                  size_t cap, WorkerStatsView* view,
                                  int max_tries = 8) {
  for (int i = 0; i < max_tries; ++i) {
    const uint32_t before = seg.stats_seq.load(std::memory_order_acquire);
    if (before & 1u) continue;
    uint32_t len = seg.stats_len;
    if (len > kStatsAreaBytes || len > cap) return false;
    std::memcpy(buf, seg.stats_text, len);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seg.stats_seq.load(std::memory_order_relaxed) == before) {
      view->seq = before;
      view->length = len;
      return true;
    }
  }
  return false;
}

// --- wire protocol ----------------------------------------------------------
//
// Fixed-header framing over a SOCK_STREAM Unix socket. Registration is
// the only message carrying fds (two memfds, global then worker, via
// SCM_RIGHTS on the reply). Control messages (set/stats/ping/shutdown)
// come from k23d's own CLI invocations, not from workers.

enum class MsgKind : uint32_t {
  kRegister = 1,   // worker -> supervisor: RegisterRequest
  kRegisterReply,  // supervisor -> worker: RegisterReply + 2 fds
  kSet,            // controller -> supervisor: "key=value" text payload
  kSetReply,       // supervisor -> controller: SetReply
  kStats,          // controller -> supervisor: empty payload
  kStatsReply,     // supervisor -> controller: text payload
  kPing,           // controller -> supervisor: empty payload
  kPong,           // supervisor -> controller: empty payload
  kShutdown,       // controller -> supervisor: empty payload
};

struct MsgHeader {
  uint32_t kind = 0;     // MsgKind
  uint32_t length = 0;   // payload bytes following the header
};

struct RegisterRequest {
  uint64_t magic = kSegmentMagic;
  uint32_t version = kProtoVersion;
  int32_t pid = 0;
  char tenant[kTenantNameLen] = {};
};

struct RegisterReply {
  int32_t status = 0;       // 0 ok, else errno
  uint32_t generation = 0;  // current config generation at registration
};

struct SetReply {
  int32_t status = 0;       // 0 ok, else errno
  uint32_t generation = 0;  // generation after the update
};

// Bounded payload sizes keep a confused/hostile peer from making the
// supervisor allocate unboundedly.
inline constexpr uint32_t kMaxPayload = 1u << 20;

// Copies `name` into a fixed tenant field, truncating, always
// NUL-terminated.
inline void set_tenant(char (&dst)[kTenantNameLen], const char* name) {
  std::memset(dst, 0, kTenantNameLen);
  if (name == nullptr) return;
  std::strncpy(dst, name, kTenantNameLen - 1);
}

}  // namespace k23::fleet
