// Syscall User Dispatch management (paper §2.1).
//
// Arming SUD makes every syscall outside an allowlisted address range
// deliver SIGSYS instead of entering the kernel's syscall path. The
// session owns:
//
//  * the gadget page — a private executable page containing a
//    position-independent `syscall; ret` thunk and an rt_sigreturn
//    restorer. The page itself is the SUD allowlisted range, so
//    dispatcher passthroughs and handler returns never re-trap;
//  * the per-thread selector byte (thread_local). The SIGSYS handler
//    flips it to ALLOW on entry (hook code may call into libc freely) and
//    back to BLOCK on exit, exactly the protocol the paper describes;
//  * the SIGSYS handler, installed via raw rt_sigaction with
//    SA_RESTORER pointing into the gadget page and SA_NODEFER (clone
//    children must not inherit a blocked SIGSYS);
//  * thread re-arming — new threads created through the dispatcher
//    re-run prctl with their own selector address (the kernel inherits
//    the *parent's* selector address otherwise, a subtle correctness trap).
//
// Used directly by: lazypoline (discovery + fallback), K23 (fallback
// only), libLogger (offline recorder), and the SUD baseline benchmarks.
#pragma once

#include <cstdint>

#include "common/result.h"
#include "interpose/dispatch.h"

namespace k23 {

class SudSession {
 public:
  struct Options {
    // Dispatch path recorded in HookContext for trapped syscalls.
    EntryPath entry_path = EntryPath::kSudFallback;
    // Called (if set) with the trapping site before dispatch — lazypoline
    // uses this to rewrite the site on first execution. Return false to
    // skip normal dispatch (the callback handled everything).
    bool (*pre_dispatch)(uint64_t site_address) = nullptr;
  };

  // Arms SUD on the calling thread (and, via the dispatcher's clone
  // interception, on threads it creates). One session per process.
  static Status arm(const Options& options);
  static Status arm() { return arm(Options{}); }
  static void disarm();
  static bool armed();

  // Selector control for the current thread. ALLOW lets syscalls through
  // untrapped ("SUD-no-interposition" in Table 5); BLOCK traps them.
  static void set_block(bool block);
  static bool blocked();

  // Selector value installed on threads the dispatcher re-arms (clone
  // children). Default true (BLOCK); the SUD-no-interposition baseline
  // sets false so worker threads also run with interposition disabled.
  static void set_default_block(bool block);

  // Re-arms SUD on the current thread (used by the clone child-init shim
  // and after fork when needed).
  static Status rearm_current_thread();

  // The gadget-page syscall entry (allowlisted `syscall; ret` thunk); for
  // tests and the SUD overhead benchmarks.
  static long gadget_syscall(long nr, long a0 = 0, long a1 = 0, long a2 = 0,
                             long a3 = 0, long a4 = 0, long a5 = 0);

  // Number of SIGSYS traps dispatched since arm().
  static uint64_t trap_count();

  // --- watchdog heartbeats (health/health.h) -----------------------------
  // A SIGSYS dispatch that entered but never exited is how a wedged hook
  // chain or deadlocked dispatcher looks from outside; the health
  // watchdog compares entered/exited against a deadline on last_entry_ms.
  struct Heartbeat {
    uint64_t entered = 0;        // SIGSYS dispatches begun
    uint64_t exited = 0;         // dispatches completed (or jumped away)
    uint64_t last_entry_ms = 0;  // monotonic_ms() at the newest entry
  };
  // Enables heartbeat accounting. Off (the default) costs the trap path
  // one relaxed load; on adds three relaxed stores plus a clock read —
  // noise against the SIGSYS round-trip itself.
  static void set_heartbeat(bool on);
  static Heartbeat heartbeat();
};

}  // namespace k23
