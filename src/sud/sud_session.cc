#include "sud/sud_session.h"

#include <signal.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <sys/syscall.h>
#include <ucontext.h>

#include <atomic>
#include <cstring>

#include "arch/regs.h"
#include "arch/thunks.h"
#include "common/logging.h"
#include "common/retry.h"
#include "common/scope_guard.h"
#include "faultinject/faultinject.h"
#include "interpose/internal.h"

#ifndef PR_SET_SYSCALL_USER_DISPATCH
#define PR_SET_SYSCALL_USER_DISPATCH 59
#endif
#ifndef PR_SYS_DISPATCH_OFF
#define PR_SYS_DISPATCH_OFF 0
#endif
#ifndef PR_SYS_DISPATCH_ON
#define PR_SYS_DISPATCH_ON 1
#endif
#ifndef SYSCALL_DISPATCH_FILTER_ALLOW
#define SYSCALL_DISPATCH_FILTER_ALLOW 0
#endif
#ifndef SYSCALL_DISPATCH_FILTER_BLOCK
#define SYSCALL_DISPATCH_FILTER_BLOCK 1
#endif
#ifndef SYS_USER_DISPATCH
#define SYS_USER_DISPATCH 2  // siginfo si_code for SUD-generated SIGSYS
#endif

namespace k23 {
namespace {

constexpr size_t kGadgetPageSize = 0x1000;
constexpr size_t kRestorerOffset = 0x100;
constexpr size_t kSigreturnOffset = 0x180;

std::atomic<bool> g_armed{false};
SudSession::Options g_options;
uint8_t* g_gadget_page = nullptr;
std::atomic<uint64_t> g_trap_count{0};
std::atomic<bool> g_default_block{true};

// Heartbeat accounting for the health watchdog. Only written from the
// SIGSYS handler when enabled; relaxed everywhere (the watchdog tolerates
// staleness of one trap — its deadlines are milliseconds, not cycles).
std::atomic<bool> g_heartbeat_on{false};
std::atomic<uint64_t> g_hb_entered{0};
std::atomic<uint64_t> g_hb_exited{0};
std::atomic<uint64_t> g_hb_last_entry_ms{0};

// Per-thread selector consulted by the kernel on every syscall.
thread_local volatile char t_selector = SYSCALL_DISPATCH_FILTER_ALLOW;

using GadgetFn = long (*)(long, long, long, long, long, long, long);
GadgetFn gadget_fn() {
  return reinterpret_cast<GadgetFn>(g_gadget_page);
}

// The kernel sigaction layout (glibc's struct differs).
struct KernelSigaction {
  void* handler;
  unsigned long flags;
  void* restorer;
  unsigned long mask;
};

constexpr unsigned long kSaRestorer = 0x04000000;

void sigsys_handler(int sig, siginfo_t* info, void* ucv) {
  if (info == nullptr || info->si_code != SYS_USER_DISPATCH) {
    // Not a SUD trap (e.g. seccomp SIGSYS): nothing we can do safely.
    return;
  }
  auto* uc = static_cast<ucontext_t*>(ucv);
  g_trap_count.fetch_add(1, std::memory_order_relaxed);

  // Allow: hook code may call straight into libc below.
  t_selector = SYSCALL_DISPATCH_FILTER_ALLOW;
  auto rearm = make_scope_guard(
      [] { t_selector = SYSCALL_DISPATCH_FILTER_BLOCK; });

  // Heartbeat: after the ALLOW flip, so the clock read (a real syscall on
  // vdso-scrubbed processes) passes straight through.
  const bool heartbeat = g_heartbeat_on.load(std::memory_order_relaxed);
  if (heartbeat) {
    g_hb_entered.fetch_add(1, std::memory_order_relaxed);
    g_hb_last_entry_ms.store(monotonic_ms(), std::memory_order_relaxed);
  }
  auto hb_exit = make_scope_guard([heartbeat] {
    if (heartbeat) g_hb_exited.fetch_add(1, std::memory_order_relaxed);
  });

  SyscallArgs args = syscall_args_from_ucontext(*uc);
  HookContext ctx;
  ctx.return_address = uc->uc_mcontext.gregs[REG_RIP];
  ctx.site_address = trapping_insn_address(*uc);
  ctx.path = g_options.entry_path;

  if (g_options.pre_dispatch != nullptr &&
      !g_options.pre_dispatch(ctx.site_address)) {
    return;  // callback consumed the event (selector re-arms via guard)
  }

  if (args.nr == SYS_rt_sigreturn) {
    // The application's own signal restorer trapped. Execute sigreturn on
    // the application's frame (at the trap-time rsp); this abandons our
    // SIGSYS frame entirely, which is exactly the desired end state.
    // Selector must be re-armed *before* the jump (the guard won't run),
    // and the heartbeat closed — a sigreturn is an exit, not a wedge.
    t_selector = SYSCALL_DISPATCH_FILTER_BLOCK;
    if (heartbeat) g_hb_exited.fetch_add(1, std::memory_order_relaxed);
    args.rdi = static_cast<long>(stack_pointer(*uc));
    Dispatcher::execute(args, ctx.return_address);  // never returns
  }

  long result = Dispatcher::instance().on_syscall(args, ctx);
  set_syscall_result(*uc, result);
}

Status install_sigsys_handler() {
  KernelSigaction ksa{};
  ksa.handler = reinterpret_cast<void*>(&sigsys_handler);
  // SA_NODEFER: do not block SIGSYS inside the handler — clone children
  // spawned from hook context must not start life with SIGSYS masked.
  ksa.flags = SA_SIGINFO | SA_NODEFER | kSaRestorer;
  ksa.restorer = g_gadget_page + kRestorerOffset;
  long rc = raw_syscall(SYS_rt_sigaction, SIGSYS,
                        reinterpret_cast<long>(&ksa), 0, 8);
  if (rc != 0) {
    errno = syscall_errno(rc);
    return Status::from_errno("rt_sigaction(SIGSYS)");
  }
  return Status::ok();
}

Status build_gadget_page() {
  void* page = ::mmap(nullptr, kGadgetPageSize, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (page == MAP_FAILED) return Status::from_errno("mmap gadget page");
  auto* p = static_cast<uint8_t*>(page);

  const size_t thunk_len = static_cast<size_t>(k23_gadget_template_end -
                                               k23_gadget_template_begin);
  if (thunk_len > kRestorerOffset) {
    ::munmap(page, kGadgetPageSize);
    return Status::fail("gadget template larger than expected");
  }
  std::memcpy(p, k23_gadget_template_begin, thunk_len);

  // Restorer: mov $__NR_rt_sigreturn, %eax ; syscall
  const uint8_t restorer[] = {0xb8, 0x0f, 0x00, 0x00, 0x00, 0x0f, 0x05};
  std::memcpy(p + kRestorerOffset, restorer, sizeof(restorer));

  // Sigreturn-on-frame: mov %rdi,%rsp ; mov $15,%eax ; syscall ; ud2
  const uint8_t sigreturn_thunk[] = {0x48, 0x89, 0xfc, 0xb8, 0x0f, 0x00,
                                     0x00, 0x00, 0x0f, 0x05, 0x0f, 0x0b};
  std::memcpy(p + kSigreturnOffset, sigreturn_thunk, sizeof(sigreturn_thunk));

  if (::mprotect(page, kGadgetPageSize, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(page, kGadgetPageSize);
    return Status::from_errno("mprotect gadget page");
  }
  g_gadget_page = p;
  return Status::ok();
}

Status enable_sud_current_thread() {
  t_selector = SYSCALL_DISPATCH_FILTER_ALLOW;
  long rc = raw_syscall(SYS_prctl, PR_SET_SYSCALL_USER_DISPATCH,
                        PR_SYS_DISPATCH_ON,
                        reinterpret_cast<long>(g_gadget_page),
                        kGadgetPageSize,
                        reinterpret_cast<long>(&t_selector));
  if (rc != 0) {
    errno = syscall_errno(rc);
    return Status::from_errno("prctl(PR_SET_SYSCALL_USER_DISPATCH, ON)");
  }
  return Status::ok();
}

// Re-points SUD at this thread's own selector. Must go through the
// gadget: the thread's inherited SUD config references the *parent's*
// selector, whose current value may be BLOCK. Returns the raw prctl rc.
long rearm_prctl_current_thread() {
  t_selector = SYSCALL_DISPATCH_FILTER_ALLOW;
  long rc = gadget_fn()(SYS_prctl, PR_SET_SYSCALL_USER_DISPATCH,
                        PR_SYS_DISPATCH_ON,
                        reinterpret_cast<long>(g_gadget_page),
                        kGadgetPageSize,
                        reinterpret_cast<long>(&t_selector), 0);
  t_selector = g_default_block.load(std::memory_order_acquire)
                   ? SYSCALL_DISPATCH_FILTER_BLOCK
                   : SYSCALL_DISPATCH_FILTER_ALLOW;
  return rc;
}

// Runs on each new thread created through the dispatcher (clone shim).
// Void and best-effort by contract: the shim runs on a frameless fresh
// stack with nowhere to report to — callers needing the verdict use
// SudSession::rearm_current_thread.
void rearm_thread_trampoline() {
  if (!g_armed.load(std::memory_order_acquire)) return;
  (void)rearm_prctl_current_thread();
}

}  // namespace

Status SudSession::arm(const Options& options) {
  if (g_armed.load(std::memory_order_acquire)) {
    return Status::fail("SUD session already armed");
  }
  // "sud_arm" fault point: models a kernel without SUD (pre-5.11, or a
  // seccomp-confined container) so the degradation ladder's seccomp rung
  // is testable on machines where SUD works.
  if (fault_fires("sud_arm")) return Status::from_errno("SUD arm");
  g_options = options;
  if (g_gadget_page == nullptr) {
    K23_RETURN_IF_ERROR(build_gadget_page());
  }
  K23_RETURN_IF_ERROR(install_sigsys_handler());
  K23_RETURN_IF_ERROR(enable_sud_current_thread());

  // From here on every dispatcher passthrough must use the gadget.
  internal::set_syscall_fn(gadget_fn());
  internal::set_sigreturn_fn(reinterpret_cast<void (*)(uint64_t)>(
      g_gadget_page + kSigreturnOffset));
  set_thread_reinit(&rearm_thread_trampoline);
  g_trap_count.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);

  t_selector = SYSCALL_DISPATCH_FILTER_BLOCK;
  return Status::ok();
}

void SudSession::disarm() {
  if (!g_armed.load(std::memory_order_acquire)) return;
  t_selector = SYSCALL_DISPATCH_FILTER_ALLOW;
  gadget_fn()(SYS_prctl, PR_SET_SYSCALL_USER_DISPATCH, PR_SYS_DISPATCH_OFF,
              0, 0, 0, 0);
  set_thread_reinit(nullptr);
  internal::set_syscall_fn(nullptr);
  internal::set_sigreturn_fn(nullptr);
  g_armed.store(false, std::memory_order_release);
}

bool SudSession::armed() { return g_armed.load(std::memory_order_acquire); }

void SudSession::set_block(bool block) {
  t_selector = block ? SYSCALL_DISPATCH_FILTER_BLOCK
                     : SYSCALL_DISPATCH_FILTER_ALLOW;
}

bool SudSession::blocked() {
  return t_selector == SYSCALL_DISPATCH_FILTER_BLOCK;
}

void SudSession::set_default_block(bool block) {
  g_default_block.store(block, std::memory_order_release);
}

Status SudSession::rearm_current_thread() {
  if (!g_armed.load(std::memory_order_acquire)) {
    return Status::fail("SUD session not armed");
  }
  // "prctl_sud" fault point: models a kernel refusing the re-arm (EAGAIN
  // under PID/rlimit pressure right after fork is the observed real-world
  // shape) so the post-fork degradation path is testable deterministically.
  if (fault_fires("prctl_sud")) {
    return Status::from_errno("prctl(PR_SET_SYSCALL_USER_DISPATCH) re-arm");
  }
  long rc = rearm_prctl_current_thread();
  if (rc != 0) {
    errno = syscall_errno(rc);
    return Status::from_errno("prctl(PR_SET_SYSCALL_USER_DISPATCH) re-arm");
  }
  return Status::ok();
}

long SudSession::gadget_syscall(long nr, long a0, long a1, long a2, long a3,
                                long a4, long a5) {
  if (g_gadget_page == nullptr) {
    return k23_syscall_ret_thunk(nr, a0, a1, a2, a3, a4, a5);
  }
  return gadget_fn()(nr, a0, a1, a2, a3, a4, a5);
}

uint64_t SudSession::trap_count() {
  return g_trap_count.load(std::memory_order_relaxed);
}

void SudSession::set_heartbeat(bool on) {
  if (on) {
    g_hb_entered.store(0, std::memory_order_relaxed);
    g_hb_exited.store(0, std::memory_order_relaxed);
    g_hb_last_entry_ms.store(0, std::memory_order_relaxed);
  }
  g_heartbeat_on.store(on, std::memory_order_release);
}

SudSession::Heartbeat SudSession::heartbeat() {
  Heartbeat hb;
  hb.entered = g_hb_entered.load(std::memory_order_relaxed);
  hb.exited = g_hb_exited.load(std::memory_order_relaxed);
  hb.last_entry_ms = g_hb_last_entry_ms.load(std::memory_order_relaxed);
  return hb;
}

}  // namespace k23
