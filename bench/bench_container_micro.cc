// Component microbenchmark (google-benchmark): the P4b data-structure
// trade-off — K23's RobinSet vs zpoline's whole-address-space bitmap vs
// std::unordered_set, on the NULL-exec-check access pattern: a lookup of
// the calling site on *every* interposed system call, with a working set
// the size of an offline log (Table 2: tens of entries).
#include <benchmark/benchmark.h>

#include <random>
#include <unordered_set>
#include <vector>

#include "container/address_bitmap.h"
#include "container/robin_set.h"

namespace k23 {
namespace {

// Synthesizes site addresses that look like the real thing: clustered in
// a few "library" regions, 2-byte-instruction aligned-ish.
std::vector<uint64_t> make_sites(size_t count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> sites;
  const uint64_t regions[] = {0x7f1234500000ULL, 0x55aabb000000ULL,
                              0x7f9876000000ULL};
  for (size_t i = 0; i < count; ++i) {
    const uint64_t base = regions[i % 3];
    sites.push_back(base + (rng() % 0x200000));
  }
  return sites;
}

void BM_RobinSetHit(benchmark::State& state) {
  const auto sites = make_sites(state.range(0), 1);
  AddressSet set;
  for (uint64_t s : sites) set.insert(s);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.contains(sites[i]));
    i = (i + 1) % sites.size();
  }
  state.counters["bytes"] = static_cast<double>(set.memory_bytes());
}
BENCHMARK(BM_RobinSetHit)->Arg(10)->Arg(44)->Arg(92)->Arg(1024);

void BM_RobinSetMiss(benchmark::State& state) {
  const auto sites = make_sites(state.range(0), 1);
  const auto probes = make_sites(state.range(0), 2);
  AddressSet set;
  for (uint64_t s : sites) set.insert(s);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.contains(probes[i]));
    i = (i + 1) % probes.size();
  }
}
BENCHMARK(BM_RobinSetMiss)->Arg(44)->Arg(1024);

void BM_AddressBitmapHit(benchmark::State& state) {
  const auto sites = make_sites(state.range(0), 1);
  AddressBitmap bitmap;
  if (!bitmap.reserve().is_ok()) {
    state.SkipWithError("bitmap reservation failed");
    return;
  }
  for (uint64_t s : sites) bitmap.set(s);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitmap.test(sites[i]));
    i = (i + 1) % sites.size();
  }
  state.counters["reserved_bytes"] =
      static_cast<double>(bitmap.reserved_bytes());
  auto resident = bitmap.resident_bytes();
  if (resident.is_ok()) {
    state.counters["resident_bytes"] =
        static_cast<double>(resident.value());
  }
}
BENCHMARK(BM_AddressBitmapHit)->Arg(10)->Arg(44)->Arg(92)->Arg(1024);

void BM_StdUnorderedSetHit(benchmark::State& state) {
  const auto sites = make_sites(state.range(0), 1);
  std::unordered_set<uint64_t> set(sites.begin(), sites.end());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.contains(sites[i]));
    i = (i + 1) % sites.size();
  }
}
BENCHMARK(BM_StdUnorderedSetHit)->Arg(44)->Arg(1024);

void BM_RobinSetInsert(benchmark::State& state) {
  const auto sites = make_sites(1024, 3);
  for (auto _ : state) {
    AddressSet set;
    for (int64_t i = 0; i < state.range(0); ++i) {
      set.insert(sites[i]);
    }
    benchmark::DoNotOptimize(set.size());
  }
}
BENCHMARK(BM_RobinSetInsert)->Arg(44)->Arg(1024);

}  // namespace
}  // namespace k23

BENCHMARK_MAIN();
