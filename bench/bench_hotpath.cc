// Hot-path price list for the interposition funnel, and the payoff of
// online promotion (see k23/promotion.h).
//
// Part 1 — per-entry-path syscall latency, one forked child, K23 armed
// with an offline log that covers exactly one of three labelled sites:
//
//   site A  logged      -> startup-rewritten `call *%rax` (the fast path)
//   site B  cache-line-straddling syscall insn -> promotion *refuses* it
//           (no atomic 2-byte store exists), so it pays the SUD SIGSYS
//           round-trip forever — the paper's price for an unlogged site
//   site C  unlogged but well-formed -> starts on SUD, crosses the
//           promotion threshold, finishes as a rewritten site
//
// The interesting ratios: promoted-C vs rewritten-A (how close online
// promotion gets to the startup rewrite; target: within 10%), and SUD-B
// vs promoted-C (what promotion saves; target: >= 10x).
//
// Part 2 — statistics sharding: the funnel records every syscall. The
// legacy SyscallStats bumped process-shared atomics (three `lock xadd`s
// per syscall); the sharded version (interpose/stats.h) does three
// relaxed load+stores on thread-private cache lines. Both are measured
// at 1/4/16 threads. (On a single-core builder the lock prefix still
// costs, but the cache-line ping-pong that motivates sharding only shows
// with real parallelism — the JSON records nproc for that reason.)
//
//   bench_hotpath [--json=PATH] [--scale=N]
//
// Writes machine-readable results to PATH (default BENCH_hotpath.json).
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "arch/raw_syscall.h"
#include "common/caps.h"
#include "interpose/stats.h"
#include "k23/k23.h"
#include "procmaps/procmaps.h"

// Three labelled syscall loops (non-existent syscall 500, paper §6.2.1:
// minimal kernel time, interposition cost dominates). Site B's syscall
// instruction is placed at offset 63 of a 64-byte-aligned block so its
// two bytes straddle a cache line: the promotion validator must refuse
// it (and the startup rewriter would too), pinning it to the SUD path.
asm(R"(
    .text
    .globl  k23_hotpath_loop_a
    .globl  k23_hotpath_site_a
    .type   k23_hotpath_loop_a, @function
k23_hotpath_loop_a:
1:  mov     $500, %eax
k23_hotpath_site_a:
    syscall
    dec     %rdi
    jnz     1b
    ret
    .size   k23_hotpath_loop_a, . - k23_hotpath_loop_a

    .p2align 6
    .globl  k23_hotpath_loop_b
    .globl  k23_hotpath_site_b
    .type   k23_hotpath_loop_b, @function
k23_hotpath_loop_b:
    mov     $500, %eax
    .fill   58, 1, 0x90
k23_hotpath_site_b:
    syscall
    dec     %rdi
    jnz     k23_hotpath_loop_b
    ret
    .size   k23_hotpath_loop_b, . - k23_hotpath_loop_b

    .globl  k23_hotpath_loop_c
    .globl  k23_hotpath_site_c
    .type   k23_hotpath_loop_c, @function
k23_hotpath_loop_c:
1:  mov     $500, %eax
k23_hotpath_site_c:
    syscall
    dec     %rdi
    jnz     1b
    ret
    .size   k23_hotpath_loop_c, . - k23_hotpath_loop_c
)");

extern "C" {
long k23_hotpath_loop_a(long iters);
long k23_hotpath_loop_b(long iters);
long k23_hotpath_loop_c(long iters);
extern char k23_hotpath_site_a[];
extern char k23_hotpath_site_b[];
extern char k23_hotpath_site_c[];
}

namespace k23::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ns_per_op(long (*loop)(long), long iters) {
  const auto start = Clock::now();
  (void)loop(iters);
  const auto stop = Clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                  start)
                 .count()) /
         static_cast<double>(iters);
}

// ---- Part 1: per-path latency, measured inside a forked child ----------

// Child writes "key value" lines into the pipe; parent collects them.
void part1_child(int fd, long scale) {
  auto emit = [fd](const char* key, double value) {
    char line[96];
    int n = std::snprintf(line, sizeof(line), "%s %.3f\n", key, value);
    (void)!::write(fd, line, static_cast<size_t>(n));
  };

  const long raw_iters = 100000 * scale;
  const long fast_iters = 100000 * scale;
  const long sud_iters = 10000 * scale;

  emit("raw_ns", ns_per_op(&k23_hotpath_loop_a, raw_iters));

  OfflineLog log;
  auto maps = ProcessMaps::snapshot();
  if (!maps.is_ok()) ::_exit(2);
  if (!log.add_address(maps.value(),
                       reinterpret_cast<uint64_t>(&k23_hotpath_site_a))) {
    ::_exit(3);
  }

  // Health-ledger overhead control: the same rewritten site, self-healing
  // off. The healthy-path delta must stay within noise of the probe
  // pointer's single relaxed load (acceptance: <= 2%).
  {
    // Identical to the measured configuration except health: promotion
    // stays on so the ratio isolates the ledger, not promotion's
    // bookkeeping.
    K23Interposer::Options nohealth;
    nohealth.promotion.threshold = 64;
    nohealth.health.enabled = false;
    auto nh = K23Interposer::init(log, nohealth);
    if (!nh.is_ok() || nh.value().rewritten_sites != 1) ::_exit(7);
    (void)k23_hotpath_loop_a(1000);
    emit("rewritten_nohealth_ns", ns_per_op(&k23_hotpath_loop_a, fast_iters));
    K23Interposer::shutdown();
  }

  K23Interposer::Options options;
  options.promotion.threshold = 64;
  auto report = K23Interposer::init(log, options);
  if (!report.is_ok() || report.value().rewritten_sites != 1 ||
      !report.value().promotion_active) {
    ::_exit(4);
  }
  if (!report.value().health_active) ::_exit(8);

  (void)k23_hotpath_loop_a(1000);  // warmup: caches, branch predictors
  emit("rewritten_ns", ns_per_op(&k23_hotpath_loop_a, fast_iters));

  // Site C: drive it across the promotion threshold, then measure the
  // promoted path.
  (void)k23_hotpath_loop_c(200);
  const bool promoted = Promotion::is_promoted(
      reinterpret_cast<uint64_t>(&k23_hotpath_site_c));
  emit("c_promoted", promoted ? 1 : 0);
  if (!promoted) ::_exit(5);
  emit("promoted_ns", ns_per_op(&k23_hotpath_loop_c, fast_iters));

  // Site B: same traffic, but the straddling instruction must have been
  // refused — it stays on the SUD path, which is what we measure.
  (void)k23_hotpath_loop_b(200);
  const bool b_refused =
      !Promotion::is_promoted(
          reinterpret_cast<uint64_t>(&k23_hotpath_site_b)) &&
      Promotion::stats().refused >= 1;
  emit("b_refused", b_refused ? 1 : 0);
  if (!b_refused) ::_exit(6);
  emit("sud_ns", ns_per_op(&k23_hotpath_loop_b, sud_iters));

  ::_exit(0);
}

bool run_part1(long scale, std::map<std::string, double>* out) {
  int fds[2];
  if (::pipe(fds) != 0) return false;
  ::fflush(nullptr);
  pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::close(fds[0]);
    part1_child(fds[1], scale);
  }
  ::close(fds[1]);
  std::string text;
  char buf[256];
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof(buf))) > 0) {
    text.append(buf, static_cast<size_t>(n));
  }
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "bench_hotpath: part-1 child failed (%s %d)\n",
                 WIFEXITED(status) ? "exit" : "signal",
                 WIFEXITED(status) ? WEXITSTATUS(status) : WTERMSIG(status));
    return false;
  }
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) break;
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    (*out)[line.substr(0, space)] = std::atof(line.c_str() + space + 1);
  }
  return true;
}

// ---- Part 2: legacy shared-atomic stats vs the sharded implementation --

// Faithful replica of the pre-sharding SyscallStats record(): three
// relaxed fetch_adds on process-shared counters.
struct LegacyStats {
  static constexpr long kMaxTracked = 512;
  static constexpr size_t kPaths =
      static_cast<size_t>(EntryPath::kPathCount);
  std::atomic<uint64_t> total{0};
  std::atomic<uint64_t> by_path[kPaths]{};
  std::atomic<uint64_t> by_nr_path[kPaths][kMaxTracked]{};

  void record(long nr, EntryPath path) {
    total.fetch_add(1, std::memory_order_relaxed);
    const auto p = static_cast<size_t>(path);
    if (p < kPaths) {
      by_path[p].fetch_add(1, std::memory_order_relaxed);
      if (nr >= 0 && nr < kMaxTracked) {
        by_nr_path[p][nr].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
};

template <typename RecordFn>
double record_mops(int threads, uint64_t per_thread, RecordFn record) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < per_thread; ++i) {
        record(static_cast<long>(39 + (t & 3)));
      }
    });
  }
  while (ready.load() != threads) {
  }
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const auto stop = Clock::now();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(stop - start)
          .count();
  return static_cast<double>(threads) * static_cast<double>(per_thread) /
         seconds / 1e6;
}

}  // namespace
}  // namespace k23::bench

int main(int argc, char** argv) {
  using namespace k23;
  using namespace k23::bench;

  std::string json_path = "BENCH_hotpath.json";
  long scale = 1;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::atol(argv[i] + 8);
      if (scale < 1) scale = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--json=PATH] [--scale=N]\n", argv[0]);
      return 2;
    }
  }

  const long nproc = ::sysconf(_SC_NPROCESSORS_ONLN);

  std::map<std::string, double> r;
  bool part1_ok = false;
  if (capabilities().mmap_va0 && capabilities().sud) {
    part1_ok = run_part1(scale, &r);
  } else {
    std::fprintf(stderr,
                 "bench_hotpath: skipping part 1 (needs VA-0 + SUD)\n");
  }

  // Part 2 needs no kernel features.
  const uint64_t base_records = 2000000ull * static_cast<uint64_t>(scale);
  const int thread_counts[] = {1, 4, 16};
  std::map<int, double> legacy_mops;
  std::map<int, double> sharded_mops;
  for (int threads : thread_counts) {
    const uint64_t per_thread = base_records / static_cast<uint64_t>(threads);
    {
      auto legacy = std::make_unique<LegacyStats>();
      legacy_mops[threads] = record_mops(
          threads, per_thread,
          [&](long nr) { legacy->record(nr, EntryPath::kRewritten); });
    }
    {
      SyscallStats sharded;
      sharded_mops[threads] = record_mops(
          threads, per_thread,
          [&](long nr) { sharded.record(nr, EntryPath::kRewritten); });
    }
  }

  // ---- report ------------------------------------------------------------
  if (part1_ok) {
    std::printf("per-path latency (ns/op, syscall 500):\n");
    std::printf("  raw            %10.1f\n", r["raw_ns"]);
    std::printf("  rewritten (A)  %10.1f  (health off: %.1f)\n",
                r["rewritten_ns"], r["rewritten_nohealth_ns"]);
    std::printf("  promoted  (C)  %10.1f\n", r["promoted_ns"]);
    std::printf("  sud       (B)  %10.1f\n", r["sud_ns"]);
    std::printf("  promoted/rewritten = %.3f, sud/promoted = %.1fx, "
                "health overhead = %.3fx\n",
                r["promoted_ns"] / r["rewritten_ns"],
                r["sud_ns"] / r["promoted_ns"],
                r["rewritten_ns"] / r["rewritten_nohealth_ns"]);
  }
  std::printf("stats record() throughput (Mops/s, %ld cpus):\n", nproc);
  for (int threads : thread_counts) {
    std::printf("  %2d threads: legacy %8.1f   sharded %8.1f   (%.2fx)\n",
                threads, legacy_mops[threads], sharded_mops[threads],
                sharded_mops[threads] / legacy_mops[threads]);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_hotpath: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"hotpath\",\n  \"nproc\": %ld,\n",
               nproc);
  std::fprintf(f, "  \"part1_ran\": %s,\n", part1_ok ? "true" : "false");
  if (part1_ok) {
    std::fprintf(f,
                 "  \"single_thread_ns_per_op\": {\n"
                 "    \"raw\": %.1f,\n    \"rewritten\": %.1f,\n"
                 "    \"rewritten_nohealth\": %.1f,\n"
                 "    \"promoted\": %.1f,\n    \"sud\": %.1f\n  },\n",
                 r["raw_ns"], r["rewritten_ns"], r["rewritten_nohealth_ns"],
                 r["promoted_ns"], r["sud_ns"]);
    std::fprintf(f,
                 "  \"ratios\": {\n"
                 "    \"promoted_vs_rewritten\": %.3f,\n"
                 "    \"sud_vs_promoted\": %.1f,\n"
                 "    \"health_vs_nohealth\": %.3f\n  },\n",
                 r["promoted_ns"] / r["rewritten_ns"],
                 r["sud_ns"] / r["promoted_ns"],
                 r["rewritten_ns"] / r["rewritten_nohealth_ns"]);
  }
  std::fprintf(f, "  \"stats_record_mops\": {\n");
  const char* sep = "";
  std::fprintf(f, "    \"legacy\": {");
  for (int threads : thread_counts) {
    std::fprintf(f, "%s\"%d\": %.1f", sep, threads, legacy_mops[threads]);
    sep = ", ";
  }
  std::fprintf(f, "},\n    \"sharded\": {");
  sep = "";
  for (int threads : thread_counts) {
    std::fprintf(f, "%s\"%d\": %.1f", sep, threads, sharded_mops[threads]);
    sep = ", ";
  }
  std::fprintf(f, "}\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return part1_ok || !(capabilities().mmap_va0 && capabilities().sud) ? 0
                                                                      : 1;
}
