// Record/replay microbenchmark (DESIGN.md §15): what recording costs on
// the hot path, what serving from a trace costs, and how much a virtual
// clock compresses a sleep-bound soak.
//
// Three phases, all through the dispatcher funnel (the same on_syscall()
// entry a rewritten site takes):
//
//   1. baseline   — clock_gettime with no hooks registered.
//   2. record     — the same loop with the recorder appending one v3
//                   record (header + timespec payload) per call. The
//                   delta over baseline is the per-call recording tax.
//   3. replay     — the same loop served from the freshly written trace
//                   (no kernel entry at all on the served path).
//
// The soak phase records a sleep-bound workload (50ms of real
// nanosleeps), then replays it under K23_CLOCK=virtual:rate=10: served
// sleeps cost nothing and the pacer compresses the recorded gaps 10x.
// The headline acceptance gate is speedup >= 5x (the ISSUE's "rate=10
// replay finishes in <= 1/5 of recorded wall-clock", with margin for
// loaded runners).
//
//   bench_replay [--iters=N] [--json=PATH]
//
// JSON metrics (regression-gated by scripts/check_bench_regression.py
// --require replay/):
//   replay/record_overhead_ns     per-call recording tax   (lower)
//   replay/serve_ns               per-call replay serve    (lower)
//   replay/soak_speedup_rate10    recorded / replayed wall (higher, >= 5)
#include <sys/syscall.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "accel/time_source.h"
#include "interpose/dispatch.h"
#include "replay/replay.h"
#include "support/json_out.h"

namespace k23::bench {
namespace {

using Clock = std::chrono::steady_clock;

double clock_loop_ns(long iters) {
  HookContext ctx;
  timespec ts{};
  SyscallArgs args;
  const auto t0 = Clock::now();
  for (long i = 0; i < iters; ++i) {
    args = SyscallArgs{};
    args.nr = SYS_clock_gettime;
    args.rdi = CLOCK_MONOTONIC;
    args.rsi = reinterpret_cast<long>(&ts);
    if (Dispatcher::instance().on_syscall(args, ctx) != 0) return -1;
  }
  const auto t1 = Clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         static_cast<double>(iters);
}

// `count` nanosleeps of `ns` each through the funnel; returns wall ns.
double sleep_loop_wall_ns(int count, long ns) {
  HookContext ctx;
  const auto t0 = Clock::now();
  for (int i = 0; i < count; ++i) {
    timespec req{0, ns};
    SyscallArgs args;
    args.nr = SYS_nanosleep;
    args.rdi = reinterpret_cast<long>(&req);
    if (Dispatcher::instance().on_syscall(args, ctx) != 0) return -1;
  }
  const auto t1 = Clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

int run(long iters, const std::string& json_path) {
  JsonReport json("replay");
  bool all_ok = true;

  char trace[] = "/tmp/k23_bench_replay.XXXXXX";
  const int tmp_fd = ::mkstemp(trace);
  if (tmp_fd < 0) {
    std::perror("bench_replay: mkstemp");
    return 1;
  }
  ::close(tmp_fd);

  std::printf("record/replay microbench, %ld calls per phase\n\n", iters);
  std::printf("%-28s %12s\n", "phase", "ns/call");

  const double base_ns = clock_loop_ns(iters);
  if (base_ns < 0) return 1;
  std::printf("%-28s %12.1f\n", "baseline (no hooks)", base_ns);

  ReplayConfig record;
  record.mode = ReplayConfig::Mode::kRecord;
  record.trace_path = trace;
  if (!Replay::init(record).is_ok()) {
    std::fprintf(stderr, "bench_replay: record init failed\n");
    return 1;
  }
  const double record_ns = clock_loop_ns(iters);
  const uint64_t recorded = Replay::recorded_count();
  Replay::shutdown();
  if (record_ns < 0 || recorded != static_cast<uint64_t>(iters)) {
    std::fprintf(stderr, "bench_replay: record phase broke (%llu/%ld)\n",
                 static_cast<unsigned long long>(recorded), iters);
    return 1;
  }
  const double overhead_ns = record_ns - base_ns;
  std::printf("%-28s %12.1f  (+%.1f recording tax)\n", "record", record_ns,
              overhead_ns);
  json.add("replay/record_overhead_ns", overhead_ns,
           /*higher_is_better=*/false);

  ReplayConfig replay;
  replay.mode = ReplayConfig::Mode::kReplay;
  replay.trace_path = trace;
  if (!Replay::init(replay).is_ok()) {
    std::fprintf(stderr, "bench_replay: replay init failed\n");
    return 1;
  }
  const double serve_ns = clock_loop_ns(iters);
  const uint64_t served = Replay::replayed_count();
  const uint64_t diverged = Replay::diverged_count();
  Replay::shutdown();
  if (serve_ns < 0 || served != static_cast<uint64_t>(iters) ||
      diverged != 0) {
    std::fprintf(stderr,
                 "bench_replay: replay phase broke (%llu served, %llu "
                 "diverged)\n",
                 static_cast<unsigned long long>(served),
                 static_cast<unsigned long long>(diverged));
    return 1;
  }
  std::printf("%-28s %12.1f\n", "replay (served)", serve_ns);
  json.add("replay/serve_ns", serve_ns, /*higher_is_better=*/false);

  // --- soak compression -----------------------------------------------------
  if (!Replay::init(record).is_ok()) return 1;  // truncates the trace
  const double rec_wall = sleep_loop_wall_ns(10, 5'000'000);  // 10 x 5ms
  Replay::shutdown();
  if (rec_wall < 0) return 1;

  TimeSourceConfig clock;
  clock.virtual_clock = true;
  clock.rate = 10.0;
  if (!TimeSource::init(clock).is_ok()) return 1;
  if (!Replay::init(replay).is_ok()) return 1;
  const double rep_wall = sleep_loop_wall_ns(10, 5'000'000);
  const uint64_t soak_diverged = Replay::diverged_count();
  Replay::shutdown();
  TimeSource::shutdown();
  if (rep_wall < 0 || soak_diverged != 0) {
    std::fprintf(stderr, "bench_replay: soak replay diverged\n");
    return 1;
  }
  const double speedup = rec_wall / rep_wall;
  std::printf("\nsoak: recorded %.1f ms, replayed %.1f ms at rate=10 "
              "(%.1fx)\n",
              rec_wall / 1e6, rep_wall / 1e6, speedup);
  json.add("replay/soak_speedup_rate10", speedup, /*higher_is_better=*/true);
  if (speedup < 5.0) {
    std::fprintf(stderr, "bench_replay: speedup %.1fx < 5x gate\n", speedup);
    all_ok = false;
  }

  ::unlink(trace);
  if (!json_path.empty()) {
    if (!json.write(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace k23::bench

int main(int argc, char** argv) {
  long iters = 50000;
  std::string json_path = "BENCH_replay.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atol(argv[i] + 8);
      if (iters < 64) iters = 64;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--iters=N] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  return k23::bench::run(iters, json_path);
}
