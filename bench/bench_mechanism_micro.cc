// Component microbenchmark (google-benchmark): where each nanosecond of
// Table 5 goes. Decomposes the mechanisms into their primitives:
//   - raw `syscall` instruction (the floor),
//   - the `syscall; ret` thunk and the SUD gadget-page call,
//   - a full trampoline round trip through a rewritten site,
//   - a SUD SIGSYS round trip,
//   - the signal-safe patch operation itself (lazy-rewrite cost),
//   - dispatcher bookkeeping (stats + hook dispatch) in isolation.
#include <benchmark/benchmark.h>
#include <sys/syscall.h>

#include "arch/raw_syscall.h"
#include "arch/thunks.h"
#include "common/caps.h"
#include "interpose/dispatch.h"
#include "rewrite/patcher.h"
#include "sud/sud_session.h"
#include "trampoline/trampoline.h"

namespace k23 {
namespace {

// A private labelled syscall site this binary can rewrite.
asm(R"(
    .text
    .globl  k23_mech_site_fn
    .globl  k23_mech_site
k23_mech_site_fn:
    mov     $500, %eax
k23_mech_site:
    syscall
    ret
)");
extern "C" long k23_mech_site_fn();
extern "C" char k23_mech_site[];

void BM_RawSyscall(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(raw_syscall(kBenchSyscallNr));
  }
}
BENCHMARK(BM_RawSyscall);

void BM_SyscallRetThunk(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        k23_syscall_ret_thunk(kBenchSyscallNr, 0, 0, 0, 0, 0, 0));
  }
}
BENCHMARK(BM_SyscallRetThunk);

void BM_DispatcherPassthrough(benchmark::State& state) {
  // Dispatcher overhead with no interposition mechanism armed: stats,
  // prctl-guard check, hook check, execute-switch, thunk.
  SyscallArgs args;
  args.nr = kBenchSyscallNr;
  HookContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Dispatcher::instance().on_syscall(args, ctx));
  }
}
BENCHMARK(BM_DispatcherPassthrough);

void BM_TrampolineRoundTrip(benchmark::State& state) {
  if (!capabilities().mmap_va0) {
    state.SkipWithError("cannot map VA 0");
    return;
  }
  static bool initialized = [] {
    if (!Trampoline::install(Trampoline::Options{}).is_ok()) return false;
    CodePatcher patcher;
    return patcher
        .patch_site(reinterpret_cast<uint64_t>(&k23_mech_site))
        .is_ok();
  }();
  if (!initialized) {
    state.SkipWithError("trampoline init failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(k23_mech_site_fn());
  }
}
BENCHMARK(BM_TrampolineRoundTrip);

void BM_SudGadgetSyscall(benchmark::State& state) {
  if (!capabilities().sud) {
    state.SkipWithError("kernel lacks SUD");
    return;
  }
  static bool armed = [] {
    if (!SudSession::arm().is_ok()) return false;
    SudSession::set_block(false);  // measure the gadget, not the trap
    return true;
  }();
  if (!armed) {
    state.SkipWithError("SUD arm failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SudSession::gadget_syscall(kBenchSyscallNr));
  }
}
BENCHMARK(BM_SudGadgetSyscall);

void BM_SudKernelSlowPath(benchmark::State& state) {
  // SUD armed, selector = ALLOW: no SIGSYS, but every syscall takes the
  // kernel's slow entry path — the "SUD-no-interposition" row.
  if (!capabilities().sud) {
    state.SkipWithError("kernel lacks SUD");
    return;
  }
  static bool armed = [] {
    if (!SudSession::armed() && !SudSession::arm().is_ok()) return false;
    SudSession::set_block(false);
    return true;
  }();
  if (!armed) {
    state.SkipWithError("SUD arm failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(raw_syscall(kBenchSyscallNr));
  }
}
BENCHMARK(BM_SudKernelSlowPath);

void BM_SudSigsysRoundTrip(benchmark::State& state) {
  if (!capabilities().sud) {
    state.SkipWithError("kernel lacks SUD");
    return;
  }
  static bool armed = [] {
    return SudSession::armed() || SudSession::arm().is_ok();
  }();
  if (!armed) {
    state.SkipWithError("SUD arm failed");
    return;
  }
  SudSession::set_block(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(raw_syscall(kBenchSyscallNr));
  }
  SudSession::set_block(false);
}
BENCHMARK(BM_SudSigsysRoundTrip);

void BM_SignalSafePatch(benchmark::State& state) {
  // Cost of one lazy rewrite (mprotect + store + serialize + mprotect) —
  // lazypoline pays this once per discovered site.
  alignas(4096) static uint8_t page[8192];
  uint8_t* target = page + 4096;
  target[0] = 0x0f;
  target[1] = 0x05;
  const auto site = reinterpret_cast<uint64_t>(target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        patch_site_signal_safe(site, PatchMode::kSafe).is_ok());
    target[0] = 0x0f;  // reset for the next iteration
    target[1] = 0x05;
  }
}
BENCHMARK(BM_SignalSafePatch);

}  // namespace
}  // namespace k23

BENCHMARK_MAIN();
