// Regenerates Table 5: microbenchmark overhead of each interposition
// mechanism relative to native execution.
//
// Methodology follows §6.2.1: a stress loop invokes the non-existent
// syscall 500 (minimal kernel time, so the interposition cost dominates)
// N times per run; each variant runs R times in a fresh forked child;
// the max and min runs are discarded and the geometric mean of the
// remaining overheads is reported with the standard deviation.
//
// The "accelerated" rows extend the table past the paper: for the
// hottest kernel-round-trip-free calls (clock_gettime, getpid) they
// compare the raw syscall, the plain interposed passthrough, and the
// accel layer answering from userspace (src/accel/) — the speedup
// columns are the layer's whole justification and are regression-gated.
//
//   bench_table5_micro [--iters=N] [--runs=R] [--json=PATH]
// Paper defaults were 100M iterations x 10 runs on an isolated Xeon;
// defaults here are sized for a shared 1-core builder.
#include <sys/syscall.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "accel/accel.h"
#include "arch/raw_syscall.h"
#include "common/caps.h"
#include "interpose/dispatch.h"
#include "k23/liblogger.h"
#include "support/json_out.h"
#include "support/stress_loop.h"
#include "support/variants.h"

namespace k23::bench {
namespace {

using Clock = std::chrono::steady_clock;

// One measured run in a fresh child; returns nanoseconds, or 0 on failure.
uint64_t run_once(Variant variant, long iterations) {
  int fds[2];
  if (::pipe(fds) != 0) return 0;
  ::fflush(nullptr);
  pid_t pid = ::fork();
  if (pid < 0) return 0;
  if (pid == 0) {
    ::close(fds[0]);
    VariantOptions options;
    OfflineLog log;
    if (variant == Variant::kK23Default || variant == Variant::kK23Ultra ||
        variant == Variant::kK23UltraPlus) {
      // Offline phase: a short recorded run of the same loop.
      auto recorded =
          LibLogger::record([] { k23_bench_stress_loop(100); });
      if (!recorded.is_ok()) ::_exit(2);
      log = std::move(recorded).value();
      options.log = &log;
    }
    if (!init_variant(variant, options).is_ok()) ::_exit(3);

    k23_bench_stress_loop(1000);  // warmup: lazy rewrites, cache fill
    const auto start = Clock::now();
    k23_bench_stress_loop(iterations);
    const auto stop = Clock::now();
    const uint64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count();
    ssize_t ignored = ::write(fds[1], &ns, sizeof(ns));
    (void)ignored;
    ::_exit(0);
  }
  ::close(fds[1]);
  uint64_t ns = 0;
  ssize_t got = ::read(fds[0], &ns, sizeof(ns));
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (got != sizeof(ns) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return 0;
  }
  return ns;
}

struct Sample {
  double mean = 0;
  double stddev_pct = 0;
  bool ok = false;
};

// Paper's statistics: drop min and max, then average.
Sample summarize(std::vector<double> values) {
  Sample out;
  if (values.size() >= 4) {
    std::sort(values.begin(), values.end());
    values.erase(values.begin());
    values.pop_back();
  }
  if (values.empty()) return out;
  double sum = 0;
  for (double v : values) sum += v;
  out.mean = sum / values.size();
  double var = 0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.stddev_pct = values.size() > 1
                       ? 100.0 * std::sqrt(var / (values.size() - 1)) /
                             out.mean
                       : 0.0;
  out.ok = true;
  return out;
}

// --- accelerated rows --------------------------------------------------------

// How a timed accel loop issues its calls.
enum class AccelMode {
  kRaw,          // raw syscall instruction, no interposition at all
  kPassthrough,  // through Dispatcher::on_syscall with an empty chain
  kAccel,        // through the dispatcher with the accel entry registered
};

// Per-call loop bodies. Results are accumulated into a sink so the
// compiler cannot elide the calls.
uint64_t timed_loop(AccelMode mode, long nr, long iterations) {
  timespec ts{};
  long sink = 0;
  SyscallArgs args;
  args.nr = nr;
  if (nr == SYS_clock_gettime) {
    args.rdi = CLOCK_MONOTONIC;
    args.rsi = reinterpret_cast<long>(&ts);
  }
  HookContext ctx;
  auto& dispatcher = Dispatcher::instance();

  const auto start = Clock::now();
  if (mode == AccelMode::kRaw) {
    for (long i = 0; i < iterations; ++i) {
      sink += raw_syscall(nr, args.rdi, args.rsi);
    }
  } else {
    for (long i = 0; i < iterations; ++i) {
      SyscallArgs call = args;
      sink += dispatcher.on_syscall(call, ctx);
    }
  }
  const auto stop = Clock::now();
  [[maybe_unused]] static volatile long g_sink;
  g_sink = sink;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
      .count();
}

// One accel measurement in a fresh forked child (same isolation as
// run_once: accel registration and stats shards never leak between
// measurements). Returns ns for `iterations` calls, 0 on failure.
uint64_t run_accel_once(AccelMode mode, long nr, long iterations) {
  int fds[2];
  if (::pipe(fds) != 0) return 0;
  ::fflush(nullptr);
  pid_t pid = ::fork();
  if (pid < 0) return 0;
  if (pid == 0) {
    ::close(fds[0]);
    if (mode == AccelMode::kAccel &&
        !Accel::init(AccelConfig{}).is_ok()) {
      ::_exit(3);
    }
    timed_loop(mode, nr, 1000);  // warmup: prime caches, fault in pages
    const uint64_t ns = timed_loop(mode, nr, iterations);
    ssize_t ignored = ::write(fds[1], &ns, sizeof(ns));
    (void)ignored;
    ::_exit(0);
  }
  ::close(fds[1]);
  uint64_t ns = 0;
  ssize_t got = ::read(fds[0], &ns, sizeof(ns));
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (got != sizeof(ns) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return 0;
  }
  return ns;
}

Sample measure_accel(AccelMode mode, long nr, long iterations, int runs) {
  std::vector<double> per_call;
  for (int r = 0; r < runs; ++r) {
    uint64_t v = run_accel_once(mode, nr, iterations);
    if (v != 0) {
      per_call.push_back(static_cast<double>(v) /
                         static_cast<double>(iterations));
    }
  }
  return summarize(per_call);
}

void run_accel_rows(long iterations, int runs, JsonReport& json) {
  std::printf("\nAccelerated rows — hot calls answered in userspace "
              "(ns/call, %ld calls x %d runs)\n\n",
              iterations, runs);
  std::printf("%-16s %10s %14s %12s %10s\n", "Syscall", "raw", "passthrough",
              "accelerated", "speedup");
  std::printf("%-16s %10s %14s %12s %10s\n", "-------", "---", "-----------",
              "-----------", "-------");

  const struct {
    long nr;
    const char* label;
  } kRows[] = {{SYS_clock_gettime, "clock_gettime"}, {SYS_getpid, "getpid"}};
  for (const auto& row : kRows) {
    const Sample raw = measure_accel(AccelMode::kRaw, row.nr, iterations,
                                     runs);
    const Sample pass =
        measure_accel(AccelMode::kPassthrough, row.nr, iterations, runs);
    const Sample accel =
        measure_accel(AccelMode::kAccel, row.nr, iterations, runs);
    if (!raw.ok || !pass.ok || !accel.ok || accel.mean <= 0) {
      std::printf("%-16s %10s\n", row.label, "failed");
      continue;
    }
    // The headline number: interposed-with-accel vs interposed-without.
    // >1 means interposition plus acceleration beats plain interposition;
    // it usually beats even the raw syscall (accel.mean < raw.mean).
    const double speedup = pass.mean / accel.mean;
    std::printf("%-16s %9.1fns %13.1fns %11.1fns %9.2fx\n", row.label,
                raw.mean, pass.mean, accel.mean, speedup);
    const std::string prefix = std::string("accel/") + row.label;
    json.add(prefix + "_raw_ns", raw.mean, /*higher_is_better=*/false);
    json.add(prefix + "_passthrough_ns", pass.mean,
             /*higher_is_better=*/false);
    json.add(prefix + "_accel_ns", accel.mean, /*higher_is_better=*/false);
    json.add(prefix + "_speedup", speedup, /*higher_is_better=*/true);
  }
}

int run(long iterations, int runs, const std::string& json_path) {
  JsonReport json("table5_micro");
  std::printf("Table 5 — microbenchmark overhead vs native "
              "(syscall 500 x %ld, %d runs/variant)\n\n",
              iterations, runs);
  std::printf("%-24s %14s %12s\n", "Mechanism", "Overhead", "(stddev)");
  std::printf("%-24s %14s %12s\n", "---------", "--------", "--------");

  Sample native;
  {
    std::vector<double> ns;
    for (int r = 0; r < runs; ++r) {
      uint64_t v = run_once(Variant::kNative, iterations);
      if (v != 0) ns.push_back(static_cast<double>(v));
    }
    native = summarize(ns);
    if (!native.ok) {
      std::printf("native measurement failed\n");
      return 1;
    }
    std::printf("%-24s %13.4fx %10.3f%%  (%.1f ns/syscall)\n", "native",
                1.0, native.stddev_pct,
                native.mean / static_cast<double>(iterations));
    json.add("native_ns_per_syscall",
             native.mean / static_cast<double>(iterations),
             /*higher_is_better=*/false);
  }

  for (Variant variant : kTable5Variants) {
    if (variant == Variant::kNative) continue;
    if (!variant_supported(variant)) {
      std::printf("%-24s %14s\n", variant_label(variant), "skipped");
      continue;
    }
    // SUD traps are ~an order of magnitude slower; keep wall time sane.
    long iters = variant == Variant::kSud ? std::max(iterations / 10, 1000L)
                                          : iterations;
    std::vector<double> overheads;
    for (int r = 0; r < runs; ++r) {
      uint64_t v = run_once(variant, iters);
      if (v != 0) {
        const double per_call = static_cast<double>(v) / iters;
        const double native_per_call =
            native.mean / static_cast<double>(iterations);
        overheads.push_back(per_call / native_per_call);
      }
    }
    Sample s = summarize(overheads);
    if (!s.ok) {
      std::printf("%-24s %14s\n", variant_label(variant), "failed");
      continue;
    }
    json.add("overhead/" + metric_slug(variant_label(variant)), s.mean,
             /*higher_is_better=*/false);
    std::printf("%-24s %13.4fx %10.3f%%\n", variant_label(variant), s.mean,
                s.stddev_pct);
  }
  std::printf(
      "\nExpected shape (paper): zpoline < K23-default < lazypoline ~ "
      "K23-ultra(+) << SUD;\nSUD-no-interposition explains most of the "
      "gap between rewriting variants.\n");

  run_accel_rows(iterations, runs, json);

  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace k23::bench

int main(int argc, char** argv) {
  long iterations = 1'000'000;
  int runs = 5;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iterations = std::atol(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      runs = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  return k23::bench::run(iterations, runs, json_path);
}
