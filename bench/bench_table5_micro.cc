// Regenerates Table 5: microbenchmark overhead of each interposition
// mechanism relative to native execution.
//
// Methodology follows §6.2.1: a stress loop invokes the non-existent
// syscall 500 (minimal kernel time, so the interposition cost dominates)
// N times per run; each variant runs R times in a fresh forked child;
// the max and min runs are discarded and the geometric mean of the
// remaining overheads is reported with the standard deviation.
//
//   bench_table5_micro [--iters=N] [--runs=R] [--json=PATH]
// Paper defaults were 100M iterations x 10 runs on an isolated Xeon;
// defaults here are sized for a shared 1-core builder.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/caps.h"
#include "k23/liblogger.h"
#include "support/json_out.h"
#include "support/stress_loop.h"
#include "support/variants.h"

namespace k23::bench {
namespace {

using Clock = std::chrono::steady_clock;

// One measured run in a fresh child; returns nanoseconds, or 0 on failure.
uint64_t run_once(Variant variant, long iterations) {
  int fds[2];
  if (::pipe(fds) != 0) return 0;
  ::fflush(nullptr);
  pid_t pid = ::fork();
  if (pid < 0) return 0;
  if (pid == 0) {
    ::close(fds[0]);
    VariantOptions options;
    OfflineLog log;
    if (variant == Variant::kK23Default || variant == Variant::kK23Ultra ||
        variant == Variant::kK23UltraPlus) {
      // Offline phase: a short recorded run of the same loop.
      auto recorded =
          LibLogger::record([] { k23_bench_stress_loop(100); });
      if (!recorded.is_ok()) ::_exit(2);
      log = std::move(recorded).value();
      options.log = &log;
    }
    if (!init_variant(variant, options).is_ok()) ::_exit(3);

    k23_bench_stress_loop(1000);  // warmup: lazy rewrites, cache fill
    const auto start = Clock::now();
    k23_bench_stress_loop(iterations);
    const auto stop = Clock::now();
    const uint64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count();
    ssize_t ignored = ::write(fds[1], &ns, sizeof(ns));
    (void)ignored;
    ::_exit(0);
  }
  ::close(fds[1]);
  uint64_t ns = 0;
  ssize_t got = ::read(fds[0], &ns, sizeof(ns));
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (got != sizeof(ns) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return 0;
  }
  return ns;
}

struct Sample {
  double mean = 0;
  double stddev_pct = 0;
  bool ok = false;
};

// Paper's statistics: drop min and max, then average.
Sample summarize(std::vector<double> values) {
  Sample out;
  if (values.size() >= 4) {
    std::sort(values.begin(), values.end());
    values.erase(values.begin());
    values.pop_back();
  }
  if (values.empty()) return out;
  double sum = 0;
  for (double v : values) sum += v;
  out.mean = sum / values.size();
  double var = 0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.stddev_pct = values.size() > 1
                       ? 100.0 * std::sqrt(var / (values.size() - 1)) /
                             out.mean
                       : 0.0;
  out.ok = true;
  return out;
}

int run(long iterations, int runs, const std::string& json_path) {
  JsonReport json("table5_micro");
  std::printf("Table 5 — microbenchmark overhead vs native "
              "(syscall 500 x %ld, %d runs/variant)\n\n",
              iterations, runs);
  std::printf("%-24s %14s %12s\n", "Mechanism", "Overhead", "(stddev)");
  std::printf("%-24s %14s %12s\n", "---------", "--------", "--------");

  Sample native;
  {
    std::vector<double> ns;
    for (int r = 0; r < runs; ++r) {
      uint64_t v = run_once(Variant::kNative, iterations);
      if (v != 0) ns.push_back(static_cast<double>(v));
    }
    native = summarize(ns);
    if (!native.ok) {
      std::printf("native measurement failed\n");
      return 1;
    }
    std::printf("%-24s %13.4fx %10.3f%%  (%.1f ns/syscall)\n", "native",
                1.0, native.stddev_pct,
                native.mean / static_cast<double>(iterations));
    json.add("native_ns_per_syscall",
             native.mean / static_cast<double>(iterations),
             /*higher_is_better=*/false);
  }

  for (Variant variant : kTable5Variants) {
    if (variant == Variant::kNative) continue;
    if (!variant_supported(variant)) {
      std::printf("%-24s %14s\n", variant_label(variant), "skipped");
      continue;
    }
    // SUD traps are ~an order of magnitude slower; keep wall time sane.
    long iters = variant == Variant::kSud ? std::max(iterations / 10, 1000L)
                                          : iterations;
    std::vector<double> overheads;
    for (int r = 0; r < runs; ++r) {
      uint64_t v = run_once(variant, iters);
      if (v != 0) {
        const double per_call = static_cast<double>(v) / iters;
        const double native_per_call =
            native.mean / static_cast<double>(iterations);
        overheads.push_back(per_call / native_per_call);
      }
    }
    Sample s = summarize(overheads);
    if (!s.ok) {
      std::printf("%-24s %14s\n", variant_label(variant), "failed");
      continue;
    }
    json.add("overhead/" + metric_slug(variant_label(variant)), s.mean,
             /*higher_is_better=*/false);
    std::printf("%-24s %13.4fx %10.3f%%\n", variant_label(variant), s.mean,
                s.stddev_pct);
  }
  std::printf(
      "\nExpected shape (paper): zpoline < K23-default < lazypoline ~ "
      "K23-ultra(+) << SUD;\nSUD-no-interposition explains most of the "
      "gap between rewriting variants.\n");
  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace k23::bench

int main(int argc, char** argv) {
  long iterations = 1'000'000;
  int runs = 5;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iterations = std::atol(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      runs = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  return k23::bench::run(iterations, runs, json_path);
}
