// Regenerates Table 6: macrobenchmark throughput of server/database
// workloads under each interposer, relative to native.
//
// Per (row, variant) cell the harness forks a fresh server child which:
//   1. (K23 variants) runs the offline phase: libLogger armed while the
//      parent drives a short warmup load, stopped via SIGUSR1;
//   2. arms the variant (zpoline scan / lazypoline / K23 online / SUD);
//   3. signals readiness over a pipe and serves until SIGTERM
//      (spawning worker processes / I/O threads per the row config —
//      all re-armed through the dispatcher's clone/fork handling).
// The parent then runs the load client and reports req/s. The sqlite row
// runs the embedded speedtest in the child and reports relative runtime.
//
// Workload substitutions (documented in DESIGN.md): mini_http buffered
// writes ~ nginx; mini_http writev ~ lighttpd; mini_kv ~ redis;
// mini_db speedtest ~ sqlite speedtest1. Worker counts scale to the
// builder (paper: 10 workers on 12 cores; --workers overrides).
//
//   bench_table6_macro [--duration=SECS] [--workers=N] [--kv-threads=N]
//                      [--db-size=N] [--json=PATH]
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/caps.h"
#include "common/files.h"
#include "k23/liblogger.h"
#include "support/json_out.h"
#include "support/variants.h"
#include "workloads/load_client.h"
#include "workloads/mini_db.h"
#include "workloads/mini_http.h"
#include "workloads/mini_kv.h"
#include "workloads/net.h"

namespace k23::bench {
namespace {

std::atomic<bool> g_warmup_stop{false};
std::atomic<bool> g_serve_stop{false};

void on_sigusr1(int) { g_warmup_stop.store(true); }
void on_sigterm(int) { g_serve_stop.store(true); }

struct RowConfig {
  std::string label;
  enum class App { kHttp, kKv, kDb } app;
  size_t body_size = 0;
  int workers = 1;
  bool use_writev = false;
  int kv_threads = 1;
  int db_size = 8;
  // Pre-fork supervisor with worker recycling: workers exit after
  // max_requests responses and are re-forked, so the cell continuously
  // exercises the fork path (process-tree propagation, DESIGN.md §9).
  bool prefork_respawn = false;
  long max_requests = 0;
  // Timestamp-heavy access logging + the accel layer answering the
  // stamps in userspace (Table 6 "logging" row, DESIGN.md §10). The log
  // sinks to /dev/null: the row isolates timestamp syscall traffic, not
  // filesystem throughput.
  bool access_log = false;
  bool accel = false;
  // File-backed unbuffered access logging + the batch layer coalescing
  // the per-line writes (Table 6 "logging, batch" row, DESIGN.md §12).
  // Unlike access_log's /dev/null sink, the log lands in a real
  // O_APPEND file with one write(2) per line — nginx's default — so the
  // row pays file-backed write traffic the submission ring absorbs.
  bool file_log = false;
  bool batch = false;
};

bool is_k23_variant(Variant v) {
  return v == Variant::kK23Default || v == Variant::kK23Ultra ||
         v == Variant::kK23UltraPlus;
}

uint16_t pick_port() {
  auto fd = tcp_listen(0);
  if (!fd.is_ok()) return 0;
  auto port = tcp_local_port(fd.value());
  ::close(fd.value());
  return port.is_ok() ? port.value() : 0;
}

// This cell-child's file-backed access-log path ("logging, batch" row).
// Every worker opens its own O_APPEND fd on it, like nginx workers on
// one access.log.
std::string file_log_path() {
  return "/tmp/k23_t6_access." + std::to_string(::getpid()) + ".log";
}

// Serves the row's app until g_serve_stop (SIGTERM).
int serve_row(const RowConfig& row, uint16_t port) {
  if (row.app == RowConfig::App::kHttp) {
    MiniHttpOptions options;
    options.port = port;
    options.body_size = row.body_size;
    options.use_writev = row.use_writev;
    if (row.access_log) {
      options.access_log_fd = ::open("/dev/null", O_WRONLY | O_CLOEXEC);
    }
    if (row.file_log) {
      options.access_log_path = file_log_path();
      options.access_log_unbuffered = true;
    }
    if (row.prefork_respawn) {
      options.workers = row.workers;
      options.max_requests_per_worker = row.max_requests;
      options.stop = &g_serve_stop;
      const bool ok = run_http_server_prefork(options).is_ok();
      if (row.file_log) ::unlink(options.access_log_path.c_str());
      return ok ? 0 : 1;
    }
    if (row.workers <= 1) {
      options.stop = &g_serve_stop;
      const bool ok = run_http_server_inline(options).is_ok();
      if (row.file_log) ::unlink(options.access_log_path.c_str());
      return ok ? 0 : 1;
    }
    options.workers = row.workers;
    auto handle = spawn_http_server(options);
    if (!handle.is_ok()) return 1;
    while (!g_serve_stop.load()) ::usleep(20'000);
    stop_http_server(handle.value());
    if (row.file_log) ::unlink(options.access_log_path.c_str());
    return 0;
  }
  if (row.app == RowConfig::App::kKv) {
    MiniKvOptions options;
    options.port = port;
    options.io_threads = row.kv_threads;
    options.stop = &g_serve_stop;
    return run_kv_server_inline(options).is_ok() ? 0 : 1;
  }
  return 1;
}

// Short single-process serve under libLogger (offline phase). The parent
// drives warmup traffic and then sends SIGUSR1.
OfflineLog offline_phase(const RowConfig& row, uint16_t port) {
  OfflineLog log;
  auto recorded = LibLogger::record([&] {
    if (row.app == RowConfig::App::kHttp) {
      MiniHttpOptions options;
      options.port = port;
      options.body_size = row.body_size;
      options.use_writev = row.use_writev;
      // The warmup must take the same timestamp-stamping path as the
      // measured serve: the offline log has to contain the stamp sites
      // for the K23 variants to rewrite them. Same for the file-backed
      // log's write sites (the batch layer passes through uncovered
      // paths untouched, but the K23 funnel itself needs the sites).
      if (row.access_log) {
        options.access_log_fd = ::open("/dev/null", O_WRONLY | O_CLOEXEC);
      }
      if (row.file_log) {
        options.access_log_path = file_log_path();
        options.access_log_unbuffered = true;
      }
      options.stop = &g_warmup_stop;
      (void)run_http_server_inline(options);
      if (options.access_log_fd >= 0) ::close(options.access_log_fd);
      if (row.file_log) ::unlink(options.access_log_path.c_str());
    } else if (row.app == RowConfig::App::kKv) {
      MiniKvOptions options;
      options.port = port;
      options.io_threads = 1;
      options.stop = &g_warmup_stop;
      (void)run_kv_server_inline(options);
    } else {
      auto dir = make_temp_dir("k23_t6_offline_db_");
      if (dir.is_ok()) {
        (void)run_db_speedtest(dir.value(), 2);
        (void)remove_tree(dir.value());
      }
      g_warmup_stop.store(true);
    }
  });
  if (recorded.is_ok()) log = std::move(recorded).value();
  return log;
}

// One (row, variant) cell. For servers: returns requests/second.
// For the db row: returns operations/second (relative metric either way).
double run_cell(const RowConfig& row, Variant variant, double duration) {
  const uint16_t warmup_port = pick_port();
  const uint16_t serve_port = pick_port();
  if (row.app != RowConfig::App::kDb &&
      (warmup_port == 0 || serve_port == 0)) {
    return -1;
  }
  int ready[2];
  int result_pipe[2];
  if (::pipe(ready) != 0 || ::pipe(result_pipe) != 0) return -1;

  ::fflush(nullptr);
  pid_t child = ::fork();
  if (child < 0) return -1;
  if (child == 0) {
    ::close(ready[0]);
    ::close(result_pipe[0]);
    ::signal(SIGUSR1, &on_sigusr1);
    ::signal(SIGTERM, &on_sigterm);
    g_warmup_stop = false;
    g_serve_stop = false;

    OfflineLog log;
    VariantOptions options;
    options.accel = row.accel;
    options.batch = row.batch;
    if (is_k23_variant(variant)) {
      log = offline_phase(row, warmup_port);
      options.log = &log;
    }
    if (!init_variant(variant, options).is_ok()) ::_exit(3);

    if (row.app == RowConfig::App::kDb) {
      auto dir = make_temp_dir("k23_t6_db_");
      if (!dir.is_ok()) ::_exit(4);
      auto report = run_db_speedtest(dir.value(), row.db_size);
      (void)remove_tree(dir.value());
      if (!report.is_ok()) ::_exit(5);
      const double ops_per_sec =
          report.value().operations / report.value().seconds;
      ssize_t ignored = ::write(result_pipe[1], &ops_per_sec,
                                sizeof(ops_per_sec));
      (void)ignored;
      ::_exit(0);
    }

    char ok = 1;
    ssize_t ignored = ::write(ready[1], &ok, 1);
    (void)ignored;
    ::_exit(serve_row(row, serve_port));
  }

  ::close(ready[1]);
  ::close(result_pipe[1]);
  double value = -1;

  if (row.app == RowConfig::App::kDb) {
    // Drive the K23 offline phase to completion: it needs no traffic
    // (speedtest runs by itself) but does need the SIGUSR1 edge absent.
    if (::read(result_pipe[0], &value, sizeof(value)) != sizeof(value)) {
      value = -1;
    }
  } else {
    if (is_k23_variant(variant)) {
      // Warmup traffic against the libLogger'd single-process server.
      LoadOptions warmup;
      warmup.port = warmup_port;
      warmup.connections = 4;
      warmup.duration_seconds = 0.3;
      auto warm = row.app == RowConfig::App::kHttp ? run_http_load(warmup)
                                                   : run_kv_load(warmup);
      (void)warm;
      ::kill(child, SIGUSR1);
    }
    char ok = 0;
    if (::read(ready[0], &ok, 1) == 1 && ok == 1) {
      LoadOptions load;
      load.port = serve_port;
      load.connections = 16 * std::max(row.workers, row.kv_threads);
      load.duration_seconds = duration;
      auto result = row.app == RowConfig::App::kHttp ? run_http_load(load)
                                                     : run_kv_load(load);
      if (result.is_ok()) value = result.value().requests_per_second();
    }
    ::kill(child, SIGTERM);
  }
  ::close(ready[0]);
  ::close(result_pipe[0]);
  int status = 0;
  ::waitpid(child, &status, 0);
  return value;
}

// Best-of-R: on a shared single-core builder, transient contention only
// ever *lowers* throughput, so the max over R runs is the least-noisy
// estimator (the paper instead discards min/max over 10 runs on an
// isolated machine).
double measure_cell(const RowConfig& row, Variant variant, double duration,
                    int runs) {
  double best = -1;
  for (int r = 0; r < runs; ++r) {
    best = std::max(best, run_cell(row, variant, duration));
  }
  return best;
}

int run(double duration, int workers, int kv_threads, int db_size,
        int runs, const std::string& json_path) {
  {
    // Discarded warmup: the first speedtest pays one-time filesystem
    // costs (journal, page cache) that would otherwise penalize whichever
    // variant happens to run first.
    auto dir = make_temp_dir("k23_t6_warmup_db_");
    if (dir.is_ok()) {
      (void)run_db_speedtest(dir.value(), db_size);
      (void)remove_tree(dir.value());
    }
  }
  std::vector<RowConfig> rows = {
      {"nginx-like    (1 worker, 0 KB)", RowConfig::App::kHttp, 0, 1, false},
      {"nginx-like    (1 worker, 4 KB)", RowConfig::App::kHttp, 4096, 1,
       false},
      {"nginx-like    (N workers, 0 KB)", RowConfig::App::kHttp, 0, workers,
       false},
      {"nginx-like    (N workers, 4 KB)", RowConfig::App::kHttp, 4096,
       workers, false},
      {"lighttpd-like (1 worker, 0 KB)", RowConfig::App::kHttp, 0, 1, true},
      {"lighttpd-like (1 worker, 4 KB)", RowConfig::App::kHttp, 4096, 1,
       true},
      {"lighttpd-like (N workers, 0 KB)", RowConfig::App::kHttp, 0, workers,
       true},
      {"lighttpd-like (N workers, 4 KB)", RowConfig::App::kHttp, 4096,
       workers, true},
  };
  RowConfig kv1{"redis-like    (1 I/O thread)", RowConfig::App::kKv};
  kv1.kv_threads = 1;
  rows.push_back(kv1);
  RowConfig kvn{"redis-like    (N I/O threads)", RowConfig::App::kKv};
  kvn.kv_threads = kv_threads;
  rows.push_back(kvn);
  RowConfig db{"sqlite-like   (speedtest)", RowConfig::App::kDb};
  db.db_size = db_size;
  rows.push_back(db);
  // Process-churn row: pre-fork supervisor with worker recycling — each
  // fork must re-arm SUD and each worker's artifacts must stay per-PID
  // (process-tree propagation, DESIGN.md §9). Recycling every ~2000
  // requests keeps fork rate high enough to matter without turning the
  // cell into a pure fork benchmark.
  RowConfig prefork{"nginx-like    (prefork respawn)", RowConfig::App::kHttp,
                    0, std::max(workers, 2), false};
  prefork.prefork_respawn = true;
  prefork.max_requests = 2000;
  rows.push_back(prefork);
  // Timestamp-heavy row: every response takes four extra timestamp/pid
  // syscalls (the stamps a production access log pays with the vDSO
  // scrubbed). With the accel layer armed the interposed variants answer
  // them in userspace, so this row should land *above* its plain
  // nginx-like sibling relative to native — the macro case for
  // src/accel/ (DESIGN.md §10).
  RowConfig logging{"nginx-like    (logging, accel)", RowConfig::App::kHttp,
                    0, 1, false};
  logging.access_log = true;
  logging.accel = true;
  rows.push_back(logging);
  // Write-batching row: nginx's default logging — one write(2) per line
  // into a real O_APPEND file — with the submission ring (src/batch/)
  // coalescing those writes into writev/io_uring flushes and the accel
  // layer answering the stamps. The interposed variants amortize the
  // per-line syscall natively-logging nginx pays in full, so this row
  // should land at or above native (DESIGN.md §12's headline claim).
  RowConfig batch_log{"nginx-like    (logging, batch)", RowConfig::App::kHttp,
                      0, 1, false};
  batch_log.file_log = true;
  batch_log.accel = true;
  batch_log.batch = true;
  rows.push_back(batch_log);

  std::printf("Table 6 — macrobenchmark throughput relative to native "
              "(%% of native; native = 100%%)\n");
  std::printf("duration=%.1fs per cell, N workers=%d, N kv threads=%d, "
              "db size=%d\n\n",
              duration, workers, kv_threads, db_size);

  std::printf("%-34s %12s", "Workload", "native");
  for (Variant v : kTable6Variants) {
    if (v == Variant::kNative) continue;
    std::printf(" %12s", variant_label(v));
  }
  std::printf("\n");

  // Geometric-mean accumulators per variant.
  std::vector<double> geo_log(std::size(kTable6Variants), 0.0);
  std::vector<int> geo_n(std::size(kTable6Variants), 0);
  JsonReport json("table6_macro");

  for (const RowConfig& row : rows) {
    const double native =
        measure_cell(row, Variant::kNative, duration, runs);
    std::printf("%-34s %11.0f%s", row.label.c_str(), native,
                row.app == RowConfig::App::kDb ? "o" : "r");
    ::fflush(stdout);
    size_t index = 0;
    for (Variant v : kTable6Variants) {
      ++index;
      if (v == Variant::kNative) continue;
      if (!variant_supported(v)) {
        std::printf(" %12s", "skip");
        continue;
      }
      const double value = measure_cell(row, v, duration, runs);
      if (value <= 0 || native <= 0) {
        std::printf(" %12s", "fail");
        continue;
      }
      const double relative = 100.0 * value / native;
      geo_log[index - 1] += std::log(relative);
      geo_n[index - 1] += 1;
      json.add("relative/" + metric_slug(row.label) + "/" +
                   metric_slug(variant_label(v)),
               relative, /*higher_is_better=*/true);
      std::printf(" %11.2f%%", relative);
      ::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("%-34s %12s", "geomean", "");
  size_t index = 0;
  for (Variant v : kTable6Variants) {
    ++index;
    if (v == Variant::kNative) continue;
    if (geo_n[index - 1] == 0) {
      std::printf(" %12s", "-");
      continue;
    }
    std::printf(" %11.2f%%",
                std::exp(geo_log[index - 1] / geo_n[index - 1]));
  }
  std::printf("\n\nExpected shape (paper): rewriting interposers >= ~95%% "
              "of native;\nSUD collapses to ~35-65%% on syscall-heavy "
              "rows.\nUnits: r = requests/s, o = db operations/s.\n");
  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace k23::bench

int main(int argc, char** argv) {
  double duration = 1.0;
  int workers = 4;
  int kv_threads = 3;
  int db_size = 8;
  int runs = 2;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--duration=", 11) == 0) {
      duration = std::atof(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--kv-threads=", 13) == 0) {
      kv_threads = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--db-size=", 10) == 0) {
      db_size = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      runs = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  return k23::bench::run(duration, workers, kv_threads, db_size, runs,
                         json_path);
}
