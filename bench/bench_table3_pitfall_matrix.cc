// Regenerates Table 3: the pitfall matrix. Every cell runs the live PoC
// for that (pitfall, interposer) pair; ✓ means handled or not relevant,
// ✗ means the pitfall manifests — same convention as the paper.
//
//   bench_table3_pitfall_matrix [--json=PATH]
//
// --json encodes each executed cell as cell/<pitfall>/<column> with value
// 1 (ok) or 0 (VULN/ERR), so CI can diff the matrix against a baseline;
// skipped cells (missing kernel capability) are omitted.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/caps.h"
#include "pitfalls/pitfalls.h"
#include "support/json_out.h"

namespace k23::bench {
namespace {

// The paper's Table 3 reports one column per published system; for P4*
// rows the zpoline/K23 behaviour is defined by the variant carrying the
// NULL-exec check, so those cells run the -ultra variants.
InterposerKind column_kind(PitfallId id, int column) {
  const bool p4 = id == PitfallId::kP4a || id == PitfallId::kP4b;
  switch (column) {
    case 0:
      return p4 ? InterposerKind::kZpolineUltra
                : InterposerKind::kZpolineDefault;
    case 1:
      return InterposerKind::kLazypoline;
    default:
      return p4 ? InterposerKind::kK23Ultra : InterposerKind::kK23Default;
  }
}

const char* cell(PocVerdict verdict) {
  switch (verdict) {
    case PocVerdict::kResilient:
    case PocVerdict::kNotApplicable:
      return "ok";   // ✓ in the paper (handled or not relevant)
    case PocVerdict::kAffected:
      return "VULN"; // ✗
    case PocVerdict::kSkipped:
      return "skip";
    case PocVerdict::kError:
      return "ERR";
  }
  return "?";
}

int run(const std::string& json_path) {
  std::printf("Table 3 — interposers vs System Call Interposition "
              "Pitfalls (live PoCs)\n");
  std::printf("ok = handled / not relevant (paper: check mark), "
              "VULN = pitfall manifests (paper: cross)\n\n");
  std::printf("%-38s %10s %12s %8s\n", "Pitfall", "zpoline", "lazypoline",
              "K23");
  std::printf("%-38s %10s %12s %8s\n", "-------", "-------", "----------",
              "---");

  JsonReport json("table3_pitfall_matrix");
  static const char* kColumns[3] = {"zpoline", "lazypoline", "k23"};
  int mismatches = 0;
  for (PitfallId id : kAllPitfalls) {
    PocVerdict verdicts[3];
    for (int column = 0; column < 3; ++column) {
      verdicts[column] = run_poc(id, column_kind(id, column));
      if (verdicts[column] != PocVerdict::kSkipped) {
        const bool ok = verdicts[column] == PocVerdict::kResilient ||
                        verdicts[column] == PocVerdict::kNotApplicable;
        json.add("cell/" + metric_slug(pitfall_name(id)) + "/" +
                     kColumns[column],
                 ok ? 1.0 : 0.0, /*higher_is_better=*/true);
      }
    }
    std::printf("%-38s %10s %12s %8s\n", pitfall_name(id),
                cell(verdicts[0]), cell(verdicts[1]), cell(verdicts[2]));
    // K23's column must be all-ok — that is the paper's headline claim.
    if (verdicts[2] == PocVerdict::kAffected ||
        verdicts[2] == PocVerdict::kError) {
      ++mismatches;
    }
  }
  std::printf("\nExpected shape (paper Table 3): zpoline VULN on "
              "P1a/P2a/P2b/P3a/P4b; lazypoline VULN on\n"
              "P1a/P1b/P2b/P3b/P4a/P5; K23 ok everywhere.\n");
  json.add("k23_mismatches", mismatches, /*higher_is_better=*/false);
  if (!json_path.empty() && !json.write(json_path)) return 1;
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace k23::bench

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  return k23::bench::run(json_path);
}
