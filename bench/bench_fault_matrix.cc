// Fault matrix — walks the K23 degradation ladder by injecting failures
// with K23_FAULTS (DESIGN.md §7) and reports which coverage tier init
// lands on for each scenario, plus whether syscalls are still
// intercepted there. Each scenario runs in a forked child: armed SUD,
// seccomp filters and patched text must never leak into the harness.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/caps.h"
#include "faultinject/faultinject.h"
#include "interpose/dispatch.h"
#include "k23/k23.h"
#include "k23/liblogger.h"
#include "support/stress_loop.h"

namespace k23::bench {
namespace {

struct Scenario {
  const char* faults;        // K23_FAULTS spec ("" = fault-free baseline)
  CoverageTier expected;     // tier init must land on
  bool init_fails;           // bottom rung: init returns an error
  bool needs_seccomp;        // scenario exercises the seccomp rung
};

const Scenario kScenarios[] = {
    {"", CoverageTier::kRewriteAndSud, false, false},
    {"mprotect:enomem:every=1", CoverageTier::kSudOnly, false, false},
    {"mprotect:enomem:nth=2", CoverageTier::kSudOnly, false, false},
    {"sud_arm:enosys", CoverageTier::kRewriteAndSeccomp, false, true},
    {"sud_arm:enosys;mprotect:enomem:every=1", CoverageTier::kSeccompOnly,
     false, true},
    {"sud_arm:enosys;seccomp_arm:enosys;mprotect:enomem:every=1",
     CoverageTier::kNone, true, true},
};

struct ChildReport {
  int init_ok = 0;
  int tier = -1;
  uint32_t rewritten = 0;
  uint32_t events = 0;
  int intercepted = 0;
};

ChildReport run_scenario(const Scenario& sc) {
  ChildReport out;
  int fds[2];
  if (::pipe(fds) != 0) return out;
  ::fflush(nullptr);
  pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fds[0]);
    ChildReport r;
    ::setenv("K23_FAULTS", sc.faults, 1);
    // The workload spans two text mappings (this binary's stress site
    // plus libc's I/O sites) so the patcher always has at least two page
    // runs — that is what makes the nth=2 mid-batch scenario bite.
    auto log = LibLogger::record([] {
      k23_bench_stress_loop(100);
      for (int i = 0; i < 3; ++i) {
        FILE* f = ::fopen("/proc/self/stat", "r");
        if (f != nullptr) {
          char buf[64];
          (void)::fgets(buf, sizeof(buf), f);
          ::fclose(f);
        }
      }
    });
    if (log.is_ok() && FaultInjector::configure_from_env().is_ok()) {
      auto report =
          K23Interposer::init(log.value(), K23Interposer::Options{});
      FaultInjector::reset();
      r.init_ok = report.is_ok() ? 1 : 0;
      if (report.is_ok()) {
        const auto& deg = report.value().degradation;
        r.tier = static_cast<int>(deg.tier);
        r.rewritten = static_cast<uint32_t>(
            report.value().rewritten_sites);
        r.events = static_cast<uint32_t>(deg.events.size());
        auto& stats = Dispatcher::instance().stats();
        const uint64_t before = stats.by_path(EntryPath::kRewritten) +
                                stats.by_path(EntryPath::kSudFallback);
        k23_bench_stress_loop(10);
        const uint64_t after = stats.by_path(EntryPath::kRewritten) +
                               stats.by_path(EntryPath::kSudFallback);
        r.intercepted = after >= before + 10 ? 1 : 0;
      }
    }
    ssize_t ignored = ::write(fds[1], &r, sizeof(r));
    (void)ignored;
    ::_exit(0);
  }
  ::close(fds[1]);
  ssize_t got = ::read(fds[0], &out, sizeof(out));
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (got != sizeof(out) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return ChildReport{};
  }
  return out;
}

int run() {
  if (!capabilities().mmap_va0 || !capabilities().sud) {
    std::printf("fault matrix: skipped (needs VA-0 + SUD)\n");
    return 0;
  }
  const bool have_seccomp = capabilities().seccomp;

  std::printf("Fault matrix — degradation ladder under K23_FAULTS "
              "(DESIGN.md §7)\n\n");
  std::printf("%-52s %-16s %-16s %-11s %s\n", "K23_FAULTS", "expected",
              "observed", "intercepts", "verdict");
  std::printf("%-52s %-16s %-16s %-11s %s\n", "----------", "--------",
              "--------", "----------", "-------");

  int mismatches = 0;
  for (const Scenario& sc : kScenarios) {
    const char* label = sc.faults[0] != '\0' ? sc.faults : "(none)";
    if (sc.needs_seccomp && !have_seccomp) {
      std::printf("%-52s %-16s %-16s %-11s %s\n", label,
                  tier_name(sc.expected), "-", "-", "skip (no seccomp)");
      continue;
    }
    ChildReport r = run_scenario(sc);
    const char* observed =
        sc.init_fails
            ? (r.init_ok != 0 ? "init-succeeded" : tier_name(sc.expected))
            : (r.init_ok != 0
                   ? tier_name(static_cast<CoverageTier>(r.tier))
                   : "init-failed");
    bool ok;
    const char* intercepts;
    if (sc.init_fails) {
      // Bottom rung: init must REFUSE to come up rather than claim
      // coverage it does not have.
      ok = r.init_ok == 0;
      intercepts = "n/a";
    } else {
      ok = r.init_ok != 0 &&
           r.tier == static_cast<int>(sc.expected) && r.intercepted != 0;
      intercepts = r.intercepted != 0 ? "yes" : "NO";
    }
    std::printf("%-52s %-16s %-16s %-11s %s\n", label,
                tier_name(sc.expected), observed, intercepts,
                ok ? "ok" : "MISMATCH");
    if (!ok) ++mismatches;
  }
  std::printf("\nEvery rung keeps intercepting until the ladder is "
              "exhausted; the bottom rung fails closed.\n");
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace k23::bench

int main() { return k23::bench::run(); }
