// Ablation study: prices the individual design choices DESIGN.md calls
// out, using the Table 5 stress loop. Each row toggles exactly one
// feature against a baseline:
//
//   K23 without SUD fallback   — what the fallback's kernel slow path
//                                costs even when never taken (the
//                                SUD-no-interposition effect, §6.2.1);
//   K23 entry check on/off     — the RobinSet lookup per rewritten call;
//   K23 stack switch on/off    — the ultra+ dedicated-stack hop;
//   lazypoline safe patching   — P5 fixed vs faithful (per-rewrite cost
//                                is off the hot path, so this should be
//                                ~free at steady state: the pitfall is
//                                about correctness, not speed).
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/caps.h"
#include "k23/k23.h"
#include "k23/liblogger.h"
#include "lazypoline/lazypoline.h"
#include "support/stress_loop.h"

namespace k23::bench {
namespace {

using Clock = std::chrono::steady_clock;

enum class Config {
  kNative,
  kK23NoFallback,     // rewriting only, SUD never armed
  kK23Default,        // + SUD fallback
  kK23Ultra,          // + RobinSet entry check
  kK23UltraPlus,      // + dedicated stack
  kLazypolineFaithful,
  kLazypolineSafePatch,
};

const char* config_label(Config config) {
  switch (config) {
    case Config::kNative: return "native";
    case Config::kK23NoFallback: return "K23 (rewrite only, no SUD)";
    case Config::kK23Default: return "K23-default (+SUD fallback)";
    case Config::kK23Ultra: return "K23-ultra (+entry check)";
    case Config::kK23UltraPlus: return "K23-ultra+ (+stack switch)";
    case Config::kLazypolineFaithful: return "lazypoline (P5 faithful)";
    case Config::kLazypolineSafePatch: return "lazypoline (safe patching)";
  }
  return "?";
}

bool init_config(Config config) {
  switch (config) {
    case Config::kNative:
      return true;
    case Config::kLazypolineFaithful: {
      LazypolineInterposer::Options options;
      options.faithful_p5 = true;
      return LazypolineInterposer::init(options).is_ok();
    }
    case Config::kLazypolineSafePatch: {
      LazypolineInterposer::Options options;
      options.faithful_p5 = false;
      return LazypolineInterposer::init(options).is_ok();
    }
    default: {
      auto log = LibLogger::record([] { k23_bench_stress_loop(100); });
      if (!log.is_ok()) return false;
      K23Interposer::Options options;
      options.sud_fallback = config != Config::kK23NoFallback;
      options.variant = config == Config::kK23Ultra ? K23Variant::kUltra
                        : config == Config::kK23UltraPlus
                            ? K23Variant::kUltraPlus
                            : K23Variant::kDefault;
      return K23Interposer::init(log.value(), options).is_ok();
    }
  }
}

uint64_t run_once(Config config, long iterations) {
  int fds[2];
  if (::pipe(fds) != 0) return 0;
  ::fflush(nullptr);
  pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fds[0]);
    if (!init_config(config)) ::_exit(2);
    k23_bench_stress_loop(1000);
    const auto start = Clock::now();
    k23_bench_stress_loop(iterations);
    const uint64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now() - start)
                            .count();
    ssize_t ignored = ::write(fds[1], &ns, sizeof(ns));
    (void)ignored;
    ::_exit(0);
  }
  ::close(fds[1]);
  uint64_t ns = 0;
  ssize_t got = ::read(fds[0], &ns, sizeof(ns));
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return (got == sizeof(ns) && WIFEXITED(status) &&
          WEXITSTATUS(status) == 0)
             ? ns
             : 0;
}

double best_of(Config config, long iterations, int runs) {
  uint64_t best = UINT64_MAX;
  for (int r = 0; r < runs; ++r) {
    uint64_t v = run_once(config, iterations);
    if (v != 0 && v < best) best = v;
  }
  return best == UINT64_MAX ? 0 : static_cast<double>(best);
}

int run(long iterations, int runs) {
  if (!capabilities().mmap_va0 || !capabilities().sud) {
    std::printf("ablation: skipped (needs VA-0 + SUD)\n");
    return 0;
  }
  std::printf("Ablation — per-feature cost on the Table 5 stress loop "
              "(syscall 500 x %ld, best of %d)\n\n",
              iterations, runs);
  const double native = best_of(Config::kNative, iterations, runs);
  if (native == 0) {
    std::printf("native measurement failed\n");
    return 1;
  }
  std::printf("%-32s %10s\n", "Configuration", "Overhead");
  std::printf("%-32s %9.4fx\n", "native", 1.0);
  for (Config config :
       {Config::kK23NoFallback, Config::kK23Default, Config::kK23Ultra,
        Config::kK23UltraPlus, Config::kLazypolineFaithful,
        Config::kLazypolineSafePatch}) {
    const double ns = best_of(config, iterations, runs);
    if (ns == 0) {
      std::printf("%-32s %10s\n", config_label(config), "failed");
      continue;
    }
    std::printf("%-32s %9.4fx\n", config_label(config), ns / native);
  }
  std::printf("\nReading: (no-SUD vs default) isolates the kernel's SUD "
              "slow path;\n(default vs ultra) the RobinSet lookup; "
              "(ultra vs ultra+) the stack switch;\nthe two lazypoline "
              "rows should tie — P5 is a correctness flaw, not a "
              "speedup.\n");
  return 0;
}

}  // namespace
}  // namespace k23::bench

int main(int argc, char** argv) {
  long iterations = 1'000'000;
  int runs = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iterations = std::atol(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      runs = std::atoi(argv[i] + 7);
    }
  }
  return k23::bench::run(iterations, runs);
}
