// Regenerates Figure 3: the offline log file produced for `ls`.
//
// Runs the mini `ls` coreutil under libLogger and prints the resulting
// log in the paper's exact on-disk format: one "<region>,<offset>" line
// per unique syscall instruction that fired.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include "common/caps.h"
#include "common/files.h"
#include "k23/liblogger.h"
#include "workloads/coreutils.h"

namespace k23::bench {
namespace {

int run() {
  if (!capabilities().sud) {
    std::printf("Figure 3: skipped (kernel lacks Syscall User Dispatch)\n");
    return 0;
  }
  auto tmp = make_temp_dir("k23_fig3_");
  if (!tmp.is_ok()) return 1;
  (void)write_file(tmp.value() + "/alpha.txt", "a\n");
  (void)write_file(tmp.value() + "/bravo.txt", "b\n");

  // Record in a forked child so SUD state does not leak.
  int fds[2];
  if (::pipe(fds) != 0) return 1;
  ::fflush(nullptr);
  pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fds[0]);
    auto log = LibLogger::record([&] { (void)tool_ls(tmp.value()); });
    if (log.is_ok()) {
      const std::string text = log.value().serialize_v1();
      ssize_t ignored = ::write(fds[1], text.data(), text.size());
      (void)ignored;
    }
    ::_exit(log.is_ok() ? 0 : 1);
  }
  ::close(fds[1]);
  std::string text;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof(buf))) > 0) {
    text.append(buf, static_cast<size_t>(n));
  }
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  (void)remove_tree(tmp.value());

  std::printf("Figure 3 — offline log generated for ls "
              "(region, offset per unique syscall site)\n\n");
  std::printf("%s", text.c_str());
  std::printf("\n(paper shows the same format for GNU ls: every entry a "
              "libc.so.6 or binary offset)\n");
  return WIFEXITED(status) && WEXITSTATUS(status) == 0 && !text.empty()
             ? 0
             : 1;
}

}  // namespace
}  // namespace k23::bench

int main() { return k23::bench::run(); }
