// Time-to-full-interposition: offline-log path vs static discovery.
//
// The paper's offline phase buys its site list with a profiling run per
// deployment: on a cold start (no log yet) the operator must run the
// workload under libLogger before K23 can rewrite anything. K23_STATIC
// discovers the sites from the mapped ELFs at load time instead. This
// bench prices the three paths on four mini workloads:
//
//   offline    profiling run under libLogger + init from the fresh log
//   static     parallel static scan + eager init from the scan alone
//   static+log scan + cross-validation against an existing log + init
//              + arming the SUD-watch tier (the K23_STATIC=on composite)
//
// Each cell runs in a forked child (SUD state and text patches must not
// leak between cells) and pipes its measurements back. The regression
// gate tracks the wall times plus the log-coverage ratio (agreed /
// log size — how much of the offline log the scan re-derives; 1.0 means
// the static scan fully replaces the profiling run).
#include <fcntl.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>

#include "common/caps.h"
#include "common/files.h"
#include "k23/k23.h"
#include "k23/liblogger.h"
#include "k23/static_discovery.h"
#include "support/json_out.h"
#include "workloads/load_client.h"
#include "workloads/mini_http.h"
#include "workloads/mini_kv.h"
#include "workloads/net.h"

namespace k23::bench {
namespace {

uint64_t now_micros() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000ull +
         static_cast<uint64_t>(ts.tv_nsec) / 1000ull;
}

// What one forked cell pipes back.
struct CellResult {
  uint64_t micros = 0;      // time-to-full-interposition for the path
  uint64_t scan_micros = 0; // static paths: the parallel scan alone
  uint64_t log_size = 0;    // offline/static+log: profiling-run sites
  uint64_t agreed = 0;      // static+log: |static ∩ log|
  uint64_t rewritten = 0;   // sites the init actually patched
  bool ok = false;
};

CellResult run_cell(const std::function<int(CellResult*)>& body) {
  int fds[2];
  if (::pipe(fds) != 0) return {};
  ::fflush(nullptr);
  pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fds[0]);
    int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::close(devnull);
    }
    CellResult result;
    int code = body(&result);
    result.ok = code == 0;
    ssize_t ignored = ::write(fds[1], &result, sizeof(result));
    (void)ignored;
    ::_exit(code);
  }
  ::close(fds[1]);
  CellResult result;
  ssize_t got = ::read(fds[0], &result, sizeof(result));
  int status = 0;
  ::close(fds[0]);
  ::waitpid(pid, &status, 0);
  if (got != sizeof(result) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    return {};
  }
  return result;
}

K23Interposer::Options init_options() {
  K23Interposer::Options options;
  options.variant = K23Variant::kUltra;
  return options;
}

// The bench_table2 served-workload shape: serve in-process (that is the
// process being profiled), drive traffic from a forked client.
template <typename ServeFn>
std::function<void()> served(ServeFn serve, bool http) {
  return [serve, http] {
    auto listen = tcp_listen(0);
    if (!listen.is_ok()) return;
    auto port = tcp_local_port(listen.value());
    ::close(listen.value());
    if (!port.is_ok()) return;
    std::atomic<bool> stop{false};
    ::fflush(nullptr);
    pid_t client = ::fork();
    if (client == 0) {
      LoadOptions load;
      load.port = port.value();
      load.connections = 4;
      load.duration_seconds = 0.3;
      if (http) {
        (void)run_http_load(load);
      } else {
        (void)run_kv_load(load);
      }
      ::_exit(0);
    }
    std::thread reaper([&] {
      int status = 0;
      ::waitpid(client, &status, 0);
      stop.store(true);
    });
    serve(port.value(), &stop);
    reaper.join();
  };
}

struct Workload {
  const char* name;
  std::function<void()> run;
};

// offline: the cold-start cost the paper's design pays — profile the
// workload under libLogger, then bring up the online phase from the log.
CellResult offline_cell(const Workload& workload) {
  return run_cell([&](CellResult* out) {
    const uint64_t start = now_micros();
    auto log = LibLogger::record(workload.run);
    if (!log.is_ok()) return 1;
    auto report = K23Interposer::init(log.value(), init_options());
    if (!report.is_ok()) return 2;
    out->micros = now_micros() - start;
    out->log_size = log.value().size();
    out->rewritten = report.value().rewritten_sites;
    return 0;
  });
}

// static: scan the mapped ELFs, rewrite everything discovered. No
// profiling run, no log — the zero-warmup path (K23_STATIC=strict).
CellResult static_cell() {
  return run_cell([](CellResult* out) {
    StaticDiscoveryConfig config;
    config.mode = StaticMode::kStrict;
    const uint64_t start = now_micros();
    auto scan = StaticDiscovery::scan_process(config);
    if (!scan.is_ok()) return 1;
    CrossValidation xval = StaticDiscovery::cross_validate(
        scan.value(), OfflineLog{}, /*have_log=*/false, config.mode);
    auto report = K23Interposer::init(xval.eager, init_options());
    if (!report.is_ok()) return 2;
    out->micros = now_micros() - start;
    out->scan_micros = scan.value().scan_micros;
    out->rewritten = report.value().rewritten_sites;
    return 0;
  });
}

// static+log: a log exists (prepared off the clock); K23_STATIC=on
// cross-validates, rewrites the agreement eagerly and arms the SUD-watch
// tier for static-only sites.
CellResult static_log_cell(const Workload& workload) {
  return run_cell([&](CellResult* out) {
    auto log = LibLogger::record(workload.run);  // untimed: pre-existing
    if (!log.is_ok()) return 1;
    StaticDiscoveryConfig config;
    config.mode = StaticMode::kOn;
    const uint64_t start = now_micros();
    auto scan = StaticDiscovery::scan_process(config);
    if (!scan.is_ok()) return 2;
    CrossValidation xval = StaticDiscovery::cross_validate(
        scan.value(), log.value(), /*have_log=*/true, config.mode);
    auto report = K23Interposer::init(xval.eager, init_options());
    if (!report.is_ok()) return 3;
    (void)StaticDiscovery::arm_watch(xval.watch);
    out->micros = now_micros() - start;
    out->scan_micros = scan.value().scan_micros;
    out->log_size = log.value().size();
    out->agreed = xval.agreed;
    out->rewritten = report.value().rewritten_sites;
    return 0;
  });
}

int run(const std::string& json_path) {
  if (!capabilities().sud) {
    std::printf("coldstart: skipped (kernel lacks Syscall User Dispatch)\n");
    return 0;
  }

  Workload workloads[] = {
      {"mini-http", served(
                        [](uint16_t port, std::atomic<bool>* stop) {
                          MiniHttpOptions options;
                          options.port = port;
                          options.body_size = 4096;
                          options.stop = stop;
                          (void)run_http_server_inline(options);
                        },
                        /*http=*/true)},
      {"mini-kv", served(
                      [](uint16_t port, std::atomic<bool>* stop) {
                        MiniKvOptions options;
                        options.port = port;
                        options.stop = stop;
                        (void)run_kv_server_inline(options);
                      },
                      /*http=*/false)},
      {"prefork", served(
                      [](uint16_t port, std::atomic<bool>* stop) {
                        MiniHttpOptions options;
                        options.port = port;
                        options.workers = 2;
                        options.stop = stop;
                        (void)run_http_server_prefork(options);
                      },
                      /*http=*/true)},
      {"selfcheck", [] {
         // Syscall-dense in-process sweep: the coreutils-shaped cell.
         // Sized so the profiling run traps roughly what an ls/cat-style
         // tool issues over its lifetime — every one a SIGSYS round trip
         // under libLogger, which is exactly the cost the offline path
         // pays on a cold start.
         for (int i = 0; i < 100000; ++i) (void)::getpid();
         auto dir = make_temp_dir("k23_coldstart_");
         if (dir.is_ok()) {
           for (int i = 0; i < 128; ++i) {
             const std::string path =
                 dir.value() + "/f" + std::to_string(i);
             (void)write_file(path, "coldstart\n");
             (void)read_file(path);
           }
           (void)remove_tree(dir.value());
         }
       }},
  };

  std::printf("Cold start — time to full interposition (microseconds)\n\n");
  std::printf("%-10s %12s %12s %12s %10s %9s\n", "workload", "offline",
              "static", "static+log", "scan", "coverage");

  JsonReport report("coldstart");
  bool static_always_wins = true;
  for (const Workload& workload : workloads) {
    CellResult offline = offline_cell(workload);
    CellResult stat = static_cell();
    CellResult composite = static_log_cell(workload);
    if (!offline.ok || !stat.ok || !composite.ok) {
      std::printf("%-10s %12s\n", workload.name, "failed");
      return 1;
    }
    const double coverage =
        composite.log_size > 0
            ? static_cast<double>(composite.agreed) /
                  static_cast<double>(composite.log_size)
            : 0.0;
    std::printf("%-10s %12llu %12llu %12llu %10llu %8.3f\n", workload.name,
                static_cast<unsigned long long>(offline.micros),
                static_cast<unsigned long long>(stat.micros),
                static_cast<unsigned long long>(composite.micros),
                static_cast<unsigned long long>(stat.scan_micros),
                coverage);
    if (stat.micros > offline.micros) static_always_wins = false;

    const std::string prefix = std::string("coldstart/") + workload.name;
    report.add(prefix + "/offline-us",
               static_cast<double>(offline.micros), false);
    report.add(prefix + "/static-us", static_cast<double>(stat.micros),
               false);
    report.add(prefix + "/staticlog-us",
               static_cast<double>(composite.micros), false);
    report.add(prefix + "/scan-us",
               static_cast<double>(stat.scan_micros), false);
    report.add(prefix + "/log-coverage", coverage, true);
  }

  std::printf("\n%s\n",
              static_always_wins
                  ? "static discovery reached full interposition no later "
                    "than the offline-log path on every workload"
                  : "WARNING: the offline-log path beat the static scan on "
                    "at least one workload");

  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace k23::bench

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  return k23::bench::run(json_path);
}
