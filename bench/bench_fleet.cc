// Fleet supervision microbenchmark (DESIGN.md §14): what does a worker
// pay per syscall for being supervised, and how fast do fleet-wide
// config pushes land?
//
// Cells (all through the dispatcher funnel, SYS_getpid as the probe —
// the cheapest real syscall, so the hook cost is the largest fraction
// of the measurement it can be):
//
//   unsupervised — no fleet hook registered: the pre-PR hot path.
//   supervised   — registered with an in-process k23d supervisor; the
//                  hook consults the shared segment (one acquire load
//                  of the segment pointer + one of the seqlock word)
//                  on every call.
//
// The headline metric is the difference of per-cell medians:
// fleet/consult_overhead_ns, gated ABSOLUTELY (<= 20 ns, ISSUE 9
// acceptance) by check_bench_regression.py --max in the nightly job —
// a relative tolerance is meaningless for a value this close to zero.
//
//   bench_fleet [--iters=N] [--runs=R] [--json=PATH]
//
// JSON metrics (all lower-is-better):
//   fleet/ns_per_syscall/unsupervised
//   fleet/ns_per_syscall/supervised
//   fleet/consult_overhead_ns        (diff of medians, clamped at 0)
//   fleet/register_us                (connect + SCM_RIGHTS + 2 mmaps)
//   fleet/push_apply_us              (apply_set -> worker hook applied)
//   fleet/stats_agg_us               (supervisor-side aggregation pass)
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/client.h"
#include "fleet/supervisor.h"
#include "interpose/dispatch.h"
#include "support/json_out.h"

namespace k23::bench {
namespace {

using Clock = std::chrono::steady_clock;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? -1.0 : v[v.size() / 2];
}

double elapsed_ns(Clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

// ns/call for `iters` getpid round trips through Dispatcher::on_syscall.
double consult_cell(long iters) {
  Dispatcher& dispatcher = Dispatcher::instance();
  HookContext ctx;
  const pid_t self = ::getpid();
  const auto start = Clock::now();
  for (long i = 0; i < iters; ++i) {
    SyscallArgs args;
    args.nr = SYS_getpid;
    if (dispatcher.on_syscall(args, ctx) != self) return -1.0;
  }
  return elapsed_ns(start) / static_cast<double>(iters);
}

int run(long iters, int runs, const std::string& json_path) {
  const std::string sock =
      "/tmp/k23.bench_fleet." + std::to_string(::getpid()) + ".sock";
  ::unlink(sock.c_str());

  fleet::SupervisorOptions options;
  options.sock = sock;
  options.tick_ms = 50;
  options.initial.publish_ms = 200;
  fleet::Supervisor supervisor(options);
  if (!supervisor.run_in_thread().is_ok()) {
    std::fprintf(stderr, "bench_fleet: supervisor failed to start\n");
    return 1;
  }

  // Unsupervised cells first: the fleet hook must not exist yet.
  std::vector<double> unsupervised;
  for (int r = 0; r < runs; ++r) {
    const double ns = consult_cell(iters);
    if (ns < 0) {
      std::fprintf(stderr, "bench_fleet: unsupervised cell failed\n");
      return 1;
    }
    unsupervised.push_back(ns);
  }

  // Registration latency: one-shot by nature (a process registers once),
  // so report the single synchronous init.
  fleet::FleetClientConfig config;
  config.enabled = true;
  config.sock = sock;
  config.tenant = "bench";
  config.connect_timeout_ms = 1000;
  const auto reg_start = Clock::now();
  if (!fleet::FleetClient::init(config).is_ok()) {
    std::fprintf(stderr, "bench_fleet: registration failed\n");
    return 1;
  }
  const double register_us = elapsed_ns(reg_start) / 1000.0;

  std::vector<double> supervised;
  for (int r = 0; r < runs; ++r) {
    const double ns = consult_cell(iters);
    if (ns < 0) {
      std::fprintf(stderr, "bench_fleet: supervised cell failed\n");
      return 1;
    }
    supervised.push_back(ns);
  }

  // Push-to-applied latency: bump the generation supervisor-side, then
  // hammer the funnel until the hook's slow path has applied it. This
  // measures apply_slow (seqlock snapshot + bucket rescan), not the
  // publisher thread's cadence.
  std::vector<double> push_us;
  for (int r = 0; r < runs * 4; ++r) {
    uint32_t gen = 0;
    if (!supervisor.apply_set("publish_ms=200", &gen).is_ok()) {
      std::fprintf(stderr, "bench_fleet: apply_set failed\n");
      return 1;
    }
    const auto start = Clock::now();
    Dispatcher& dispatcher = Dispatcher::instance();
    HookContext ctx;
    while (fleet::FleetClient::applied_generation() != gen) {
      SyscallArgs args;
      args.nr = SYS_getpid;
      (void)dispatcher.on_syscall(args, ctx);
    }
    push_us.push_back(elapsed_ns(start) / 1000.0);
  }

  // Aggregation: one full supervisor-side stats pass (seqlocked worker
  // snapshot + dump parse + render) over the registered fleet.
  std::vector<double> stats_us;
  for (int r = 0; r < runs * 4; ++r) {
    const auto start = Clock::now();
    const std::string text = supervisor.stats_text();
    if (text.empty()) {
      std::fprintf(stderr, "bench_fleet: stats_text failed\n");
      return 1;
    }
    stats_us.push_back(elapsed_ns(start) / 1000.0);
  }

  fleet::FleetClient::shutdown();
  supervisor.stop();

  const double base_ns = median(unsupervised);
  const double fleet_ns = median(supervised);
  const double overhead_ns = std::max(0.0, fleet_ns - base_ns);

  std::printf("%-32s %12s\n", "cell", "value");
  std::printf("%-32s %10.1f ns\n", "getpid via funnel, unsupervised",
              base_ns);
  std::printf("%-32s %10.1f ns\n", "getpid via funnel, supervised",
              fleet_ns);
  std::printf("%-32s %10.1f ns\n", "shmem consult overhead", overhead_ns);
  std::printf("%-32s %10.1f us\n", "register (connect+fds+mmap)",
              register_us);
  std::printf("%-32s %10.1f us\n", "push -> applied (hook slow path)",
              median(push_us));
  std::printf("%-32s %10.1f us\n", "stats aggregation pass",
              median(stats_us));

  JsonReport json("fleet");
  json.add("fleet/ns_per_syscall/unsupervised", base_ns,
           /*higher_is_better=*/false);
  json.add("fleet/ns_per_syscall/supervised", fleet_ns,
           /*higher_is_better=*/false);
  json.add("fleet/consult_overhead_ns", overhead_ns,
           /*higher_is_better=*/false);
  json.add("fleet/register_us", register_us, /*higher_is_better=*/false);
  json.add("fleet/push_apply_us", median(push_us),
           /*higher_is_better=*/false);
  json.add("fleet/stats_agg_us", median(stats_us),
           /*higher_is_better=*/false);
  if (!json_path.empty()) {
    if (!json.write(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace k23::bench

int main(int argc, char** argv) {
  long iters = 200000;
  int runs = 5;
  std::string json_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atol(argv[i] + 8);
      if (iters < 1000) iters = 1000;
    } else if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      runs = std::atoi(argv[i] + 7);
      if (runs < 1) runs = 1;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--iters=N] [--runs=R] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  return k23::bench::run(iters, runs, json_path);
}
