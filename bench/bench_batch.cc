// Write-batching microbenchmark (DESIGN.md §12): per-write latency and
// syscall reduction of the submission ring, swept over coalescing depth
// and flush backend.
//
// Every cell appends `iters` CLF-sized lines to a fresh O_APPEND temp
// file through the dispatcher funnel (the same on_syscall() entry a
// rewritten site takes), with the batch layer configured to flush every
// `depth` entries and the deadline flusher off — so depth is exactly the
// coalescing factor. The native cell runs the identical loop with no
// batch hook registered: one write(2) per line through the same funnel.
// After each cell the file is read back and byte-compared against the
// expected contents — a cell that got faster by corrupting the log
// reports "fail" instead of a number.
//
// Backends: writev always; io_uring only when the probe (common/uring.h)
// says the kernel has it AND K23_BATCH_BACKEND does not pin writev (the
// CI leg for io_uring-absent kernels sets K23_BATCH_BACKEND=writev).
//
//   bench_batch [--iters=N] [--json=PATH]
//
// JSON metrics (regression-gated by scripts/check_bench_regression.py):
//   batch/ns_per_write/native
//   batch/ns_per_write/<backend>/depth-<D>     (lower is better)
//   batch/write_reduction/<backend>            (depth 8; >= 3 required)
#include <fcntl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "batch/batch.h"
#include "common/uring.h"
#include "interpose/dispatch.h"
#include "support/json_out.h"

namespace k23::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct CellResult {
  double ns_per_write = -1;
  uint64_t batched = 0;          // writes absorbed by the ring
  uint64_t flush_syscalls = 0;   // kernel submissions draining them
  bool byte_identical = false;
};

// One deterministic ~100-byte log line per iteration.
int format_line(char* buf, size_t cap, long i) {
  return std::snprintf(buf, cap,
                       "127.0.0.1 - - [bench_batch] \"GET /item/%06ld\" "
                       "200 4096 %.1fus region=%ld\n",
                       i, static_cast<double>(i % 997) / 7.0, i % 13);
}

// Appends `iters` lines to a fresh O_APPEND file through the dispatcher
// and byte-verifies the result. `config` == nullptr is the native cell.
CellResult run_cell(long iters, const BatchConfig* config) {
  CellResult result;

  char path[] = "/tmp/k23_bench_batch.XXXXXX";
  const int tmp_fd = ::mkstemp(path);
  if (tmp_fd < 0) return result;
  ::close(tmp_fd);
  const int fd = ::open(path, O_WRONLY | O_APPEND, 0600);
  if (fd < 0) {
    ::unlink(path);
    return result;
  }

  BatchReport before = Batch::report();
  if (config != nullptr) {
    if (!Batch::init(*config).is_ok()) {
      ::close(fd);
      ::unlink(path);
      return result;
    }
    before = Batch::report();
  }

  std::string expected;
  expected.reserve(static_cast<size_t>(iters) * 100);
  Dispatcher& dispatcher = Dispatcher::instance();
  HookContext ctx;

  const auto start = Clock::now();
  for (long i = 0; i < iters; ++i) {
    char line[128];
    const int n = format_line(line, sizeof(line), i);
    expected.append(line, static_cast<size_t>(n));
    SyscallArgs args;
    args.nr = SYS_write;
    args.rdi = fd;
    args.rsi = reinterpret_cast<long>(line);
    args.rdx = n;
    if (dispatcher.on_syscall(args, ctx) != n) {
      ::close(fd);
      ::unlink(path);
      if (config != nullptr) Batch::shutdown();
      return result;
    }
  }
  const auto stop = Clock::now();
  result.ns_per_write =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              stop - start)
                              .count()) /
      static_cast<double>(iters);

  if (config != nullptr) {
    Batch::shutdown();  // drains the rings; the file is now complete
    const BatchReport after = Batch::report();
    result.batched = after.batched - before.batched;
    result.flush_syscalls = after.flush_syscalls - before.flush_syscalls;
  }
  ::close(fd);

  // Byte-identity oracle: coalescing must not reorder, drop, duplicate,
  // or tear a single line.
  std::string actual;
  const int read_fd = ::open(path, O_RDONLY);
  if (read_fd >= 0) {
    char buf[1 << 16];
    ssize_t got;
    while ((got = ::read(read_fd, buf, sizeof(buf))) > 0) {
      actual.append(buf, static_cast<size_t>(got));
    }
    ::close(read_fd);
  }
  ::unlink(path);
  result.byte_identical = actual == expected;
  return result;
}

int run(long iters, const std::string& json_path) {
  const int depths[] = {1, 2, 4, 8, 16, 32};

  std::vector<BatchBackend> backends = {BatchBackend::kWritev};
  const char* pinned = std::getenv("K23_BATCH_BACKEND");
  const bool writev_only =
      pinned != nullptr && std::strcmp(pinned, "writev") == 0;
  if (uring_caps().available && !writev_only) {
    backends.push_back(BatchBackend::kUring);
  }
  std::printf("bench_batch: flush backend on this machine: %s\n\n",
              uring_backend_summary());

  JsonReport json("batch");

  const CellResult native = run_cell(iters, nullptr);
  if (native.ns_per_write < 0 || !native.byte_identical) {
    std::fprintf(stderr, "bench_batch: native cell failed\n");
    return 1;
  }
  std::printf("%-8s %-8s %14s %12s %12s %10s\n", "backend", "depth",
              "ns/write", "writes", "flushes", "reduction");
  std::printf("%-8s %-8s %14.1f %12ld %12ld %10s\n", "native", "-",
              native.ns_per_write, iters, iters, "1.0x");
  json.add("batch/ns_per_write/native", native.ns_per_write,
           /*higher_is_better=*/false);

  bool all_ok = true;
  for (BatchBackend backend : backends) {
    const char* backend_name =
        backend == BatchBackend::kUring ? "uring" : "writev";
    for (int depth : depths) {
      BatchConfig config;
      config.enabled = true;
      config.backend = backend;
      config.max_entries = static_cast<size_t>(depth);
      config.deadline_ms = 0;  // only entry-count flushes: depth is exact
      const CellResult cell = run_cell(iters, &config);
      if (cell.ns_per_write < 0 || !cell.byte_identical ||
          cell.flush_syscalls == 0) {
        std::printf("%-8s %-8d %14s\n", backend_name, depth, "fail");
        all_ok = false;
        continue;
      }
      const double reduction = static_cast<double>(cell.batched) /
                               static_cast<double>(cell.flush_syscalls);
      std::printf("%-8s %-8d %14.1f %12llu %12llu %9.1fx\n", backend_name,
                  depth, cell.ns_per_write,
                  static_cast<unsigned long long>(cell.batched),
                  static_cast<unsigned long long>(cell.flush_syscalls),
                  reduction);
      json.add(std::string("batch/ns_per_write/") + backend_name +
                   "/depth-" + std::to_string(depth),
               cell.ns_per_write, /*higher_is_better=*/false);
      if (depth == 8) {
        json.add(std::string("batch/write_reduction/") + backend_name,
                 reduction, /*higher_is_better=*/true);
        // Headline acceptance: >= 3x fewer write syscalls at depth 8.
        if (reduction < 3.0) {
          std::fprintf(stderr,
                       "bench_batch: %s depth-8 reduction %.1fx < 3x\n",
                       backend_name, reduction);
          all_ok = false;
        }
      }
    }
  }

  std::printf("\nAll cells byte-verified against the unbatched log "
              "contents.\n");
  if (!json_path.empty() && !json.write(json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace k23::bench

int main(int argc, char** argv) {
  long iters = 20000;
  std::string json_path = "BENCH_batch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atol(argv[i] + 8);
      if (iters < 64) iters = 64;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--iters=N] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  return k23::bench::run(iters, json_path);
}
