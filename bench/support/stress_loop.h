// The Table 5 stress loop: invokes the non-existent syscall 500 from a
// single labelled site, `iterations` times. Written in assembly so the
// site is a plain `syscall` instruction that every mechanism can hit:
// zpoline's scanner finds it in the binary, libLogger records it for K23,
// lazypoline rewrites it on first execution, SUD traps it every time.
#pragma once

#include <cstdint>

extern "C" {
void k23_bench_stress_loop(long iterations);
extern char k23_bench_stress_site[];
}
