// Shared interposer-variant harness for the table benchmarks.
//
// Table 5 and Table 6 both sweep the same eight configurations: native,
// zpoline-default/-ultra, lazypoline, K23-default/-ultra/-ultra+, SUD,
// plus SUD-no-interposition for the kernel slow-path isolation row.
// init_variant brings one of them up *in the calling process* (benchmarks
// fork one child per variant).
#pragma once

#include "common/result.h"
#include "k23/offline_log.h"

namespace k23::bench {

enum class Variant {
  kNative,
  kZpolineDefault,
  kZpolineUltra,
  kLazypoline,
  kK23Default,
  kK23Ultra,
  kK23UltraPlus,
  kSud,
  kSudNoInterposition,
};

inline constexpr Variant kTable5Variants[] = {
    Variant::kNative,     Variant::kZpolineDefault,
    Variant::kZpolineUltra, Variant::kLazypoline,
    Variant::kK23Default, Variant::kK23Ultra,
    Variant::kK23UltraPlus, Variant::kSudNoInterposition,
    Variant::kSud,
};

inline constexpr Variant kTable6Variants[] = {
    Variant::kNative,     Variant::kZpolineDefault,
    Variant::kZpolineUltra, Variant::kLazypoline,
    Variant::kK23Default, Variant::kK23Ultra,
    Variant::kK23UltraPlus, Variant::kSud,
};

const char* variant_label(Variant variant);

// True if the current machine can run this variant (VA-0 / SUD caps).
bool variant_supported(Variant variant);

// Arms the variant in this process. `log` feeds the K23 variants (they
// run the online phase from it); zpoline variants scan `zpoline_scan`
// path suffixes (empty = everything file-backed, the production setup).
struct VariantOptions {
  const OfflineLog* log = nullptr;
  std::vector<std::string> zpoline_scan;
  // Register the userspace acceleration layer (src/accel/) on the armed
  // dispatcher after the variant comes up. Ignored for kNative (there is
  // no funnel to accelerate).
  bool accel = false;
  // Register the write-batching layer (src/batch/) on the armed
  // dispatcher (K23_BATCH=on defaults: append+pipe classes, backend
  // auto-detected). Ignored for kNative — there is no hook chain to
  // batch behind, and the native row must pay per-line writes.
  bool batch = false;
};
Status init_variant(Variant variant, const VariantOptions& options);

}  // namespace k23::bench
