#include "support/stress_loop.h"

// rax is clobbered by every syscall return, so the number is reloaded
// each iteration — identical to what a real wrapper does.
asm(R"(
    .text
    .globl  k23_bench_stress_loop
    .globl  k23_bench_stress_site
    .type   k23_bench_stress_loop, @function
k23_bench_stress_loop:
1:
    mov     $500, %eax
k23_bench_stress_site:
    syscall
    dec     %rdi
    jnz     1b
    ret
    .size   k23_bench_stress_loop, . - k23_bench_stress_loop
)");
