// Machine-readable benchmark output for CI regression gating.
//
// Every table bench accepts --json=PATH and appends its metrics here; the
// nightly workflow diffs the file against the committed BENCH_*.json
// baseline with scripts/check_bench_regression.py. One flat shape for
// every bench:
//
//   {
//     "benchmark": "<name>",
//     "metrics": [
//       {"name": "relative/nginx-like.../k23", "value": 97.1,
//        "higher_is_better": true},
//       ...
//     ]
//   }
//
// Metric names are stable identifiers (slashes as separators, no spaces):
// renaming one silently drops it from the regression comparison, so treat
// names as API.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace k23::bench {

class JsonReport {
 public:
  explicit JsonReport(std::string benchmark)
      : benchmark_(std::move(benchmark)) {}

  void add(std::string name, double value, bool higher_is_better) {
    metrics_.push_back({std::move(name), value, higher_is_better});
  }

  // Writes the report; returns false (and prints to stderr) on failure.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json report: cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"metrics\": [",
                 escape(benchmark_).c_str());
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", \"value\": %.6g, "
                   "\"higher_is_better\": %s}",
                   i == 0 ? "" : ",", escape(metrics_[i].name).c_str(),
                   metrics_[i].value,
                   metrics_[i].higher_is_better ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    const bool ok = std::fclose(f) == 0;
    if (!ok) std::fprintf(stderr, "json report: write %s failed\n",
                          path.c_str());
    return ok;
  }

 private:
  struct Metric {
    std::string name;
    double value = 0;
    bool higher_is_better = true;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;
      out.push_back(c);
    }
    return out;
  }

  std::string benchmark_;
  std::vector<Metric> metrics_;
};

// Turns a human row/variant label into a stable metric-name segment:
// lowercase, runs of non-alphanumerics collapse to one '-'.
inline std::string metric_slug(const std::string& label) {
  std::string out;
  bool dash = false;
  for (char c : label) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out.push_back(c);
      dash = false;
    } else if (c >= 'A' && c <= 'Z') {
      out.push_back(static_cast<char>(c - 'A' + 'a'));
      dash = false;
    } else if (c == '+') {
      // "K23-ultra+" and "K23-ultra" must stay distinct metric names.
      if (!out.empty() && !dash) out.push_back('-');
      out += "plus";
      dash = false;
    } else if (!out.empty() && !dash) {
      out.push_back('-');
      dash = true;
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

}  // namespace k23::bench
