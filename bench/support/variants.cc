#include "support/variants.h"

#include "accel/accel.h"
#include "batch/batch.h"
#include "common/caps.h"
#include "k23/k23.h"
#include "lazypoline/lazypoline.h"
#include "sud/sud_session.h"
#include "zpoline/zpoline.h"

namespace k23::bench {

const char* variant_label(Variant variant) {
  switch (variant) {
    case Variant::kNative: return "native";
    case Variant::kZpolineDefault: return "zpoline-default";
    case Variant::kZpolineUltra: return "zpoline-ultra";
    case Variant::kLazypoline: return "lazypoline";
    case Variant::kK23Default: return "K23-default";
    case Variant::kK23Ultra: return "K23-ultra";
    case Variant::kK23UltraPlus: return "K23-ultra+";
    case Variant::kSud: return "SUD";
    case Variant::kSudNoInterposition: return "SUD-no-interposition";
  }
  return "?";
}

bool variant_supported(Variant variant) {
  switch (variant) {
    case Variant::kNative:
      return true;
    case Variant::kZpolineDefault:
    case Variant::kZpolineUltra:
      return capabilities().mmap_va0;
    case Variant::kSud:
    case Variant::kSudNoInterposition:
      return capabilities().sud;
    default:
      return capabilities().mmap_va0 && capabilities().sud;
  }
}

namespace {

Status arm_variant(Variant variant, const VariantOptions& options) {
  switch (variant) {
    case Variant::kNative:
      return Status::ok();
    case Variant::kZpolineDefault:
    case Variant::kZpolineUltra: {
      ZpolineInterposer::Options zp;
      zp.variant = variant == Variant::kZpolineUltra
                       ? ZpolineVariant::kUltra
                       : ZpolineVariant::kDefault;
      zp.path_suffixes = options.zpoline_scan;
      return ZpolineInterposer::init(zp).status();
    }
    case Variant::kLazypoline:
      return LazypolineInterposer::init();
    case Variant::kK23Default:
    case Variant::kK23Ultra:
    case Variant::kK23UltraPlus: {
      if (options.log == nullptr) {
        return Status::fail("K23 variants need an offline log");
      }
      K23Interposer::Options k23;
      k23.variant = variant == Variant::kK23Default ? K23Variant::kDefault
                    : variant == Variant::kK23Ultra ? K23Variant::kUltra
                                                    : K23Variant::kUltraPlus;
      return K23Interposer::init(*options.log, k23).status();
    }
    case Variant::kSud:
      return SudSession::arm();
    case Variant::kSudNoInterposition: {
      K23_RETURN_IF_ERROR(SudSession::arm());
      // Armed but disabled via the selector: isolates the kernel's
      // SUD slow path, the dominant cost in lazypoline/K23 vs zpoline.
      SudSession::set_default_block(false);
      SudSession::set_block(false);
      return Status::ok();
    }
  }
  return Status::fail("unknown variant");
}

}  // namespace

Status init_variant(Variant variant, const VariantOptions& options) {
  K23_RETURN_IF_ERROR(arm_variant(variant, options));
  if (options.accel && variant != Variant::kNative) {
    K23_RETURN_IF_ERROR(Accel::init(AccelConfig{}));
  }
  if (options.batch && variant != Variant::kNative) {
    BatchConfig batch;
    batch.enabled = true;  // K23_BATCH=on defaults otherwise.
    return Batch::init(batch);
  }
  return Status::ok();
}

}  // namespace k23::bench
