// Regenerates Table 2: number of unique syscall/sysenter instructions
// logged by K23's offline phase (libLogger) per application.
//
// Five coreutils (pwd, touch, ls, cat, clear) and the three server/db
// stand-ins run under libLogger with representative inputs; each row
// reports the count of unique (region, offset) pairs — the set K23's
// online phase will selectively rewrite.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>

#include "common/caps.h"
#include "common/files.h"
#include "k23/liblogger.h"
#include "workloads/coreutils.h"
#include "workloads/load_client.h"
#include "workloads/mini_db.h"
#include "workloads/mini_http.h"
#include "workloads/mini_kv.h"
#include "workloads/net.h"

namespace k23::bench {
namespace {

// Records `workload` under libLogger in a forked child (SUD state must
// not leak between rows) and pipes back the unique-site count plus the
// total syscalls observed.
struct RowResult {
  uint64_t unique_sites = 0;
  uint64_t observed = 0;
  bool ok = false;
};

RowResult record_row(const std::function<void()>& workload) {
  int fds[2];
  if (::pipe(fds) != 0) return {};
  ::fflush(nullptr);
  pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fds[0]);
    // The coreutil rows write to stdout; keep the table clean.
    int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::close(devnull);
    }
    auto log = LibLogger::record(workload);
    uint64_t payload[2] = {0, 0};
    if (log.is_ok()) {
      payload[0] = log.value().size();
      payload[1] = LibLogger::observed_syscalls();
    }
    ssize_t ignored = ::write(fds[1], payload, sizeof(payload));
    (void)ignored;
    ::_exit(log.is_ok() ? 0 : 1);
  }
  ::close(fds[1]);
  uint64_t payload[2] = {0, 0};
  ssize_t got = ::read(fds[0], payload, sizeof(payload));
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  RowResult result;
  result.ok = got == sizeof(payload) && WIFEXITED(status) &&
              WEXITSTATUS(status) == 0;
  result.unique_sites = payload[0];
  result.observed = payload[1];
  return result;
}

void print_row(const char* name, const RowResult& result) {
  if (result.ok) {
    std::printf("%-12s %14llu %18llu\n", name,
                static_cast<unsigned long long>(result.unique_sites),
                static_cast<unsigned long long>(result.observed));
  } else {
    std::printf("%-12s %14s\n", name, "failed");
  }
}

// Server rows: the workload thread serves while a client thread inside
// the same recorded function drives traffic; only the serving process's
// sites land in the log (the client runs in a forked, unlogged child).
template <typename ServeFn>
std::function<void()> served_workload(ServeFn serve, bool http) {
  return [serve, http] {
    auto listen = tcp_listen(0);
    if (!listen.is_ok()) return;
    auto port = tcp_local_port(listen.value());
    ::close(listen.value());
    if (!port.is_ok()) return;

    std::atomic<bool> stop{false};
    // Client child forked before any serving: it inherits libLogger's
    // armed SUD, but its syscalls only touch its own (discarded) copy
    // of the site table.
    ::fflush(nullptr);
    pid_t client = ::fork();
    if (client == 0) {
      LoadOptions load;
      load.port = port.value();
      load.connections = 4;
      load.duration_seconds = 0.5;
      if (http) {
        (void)run_http_load(load);
      } else {
        (void)run_kv_load(load);
      }
      ::_exit(0);
    }
    std::thread reaper([&] {
      int status = 0;
      ::waitpid(client, &status, 0);
      stop.store(true);
    });
    serve(port.value(), &stop);
    reaper.join();
  };
}

int run() {
  if (!capabilities().sud) {
    std::printf("Table 2: skipped (kernel lacks Syscall User Dispatch)\n");
    return 0;
  }
  std::printf("Table 2 — unique syscall/sysenter instructions logged by "
              "the offline phase\n\n");
  std::printf("%-12s %14s %18s\n", "Application", "#Instructions",
              "(syscalls seen)");
  std::printf("%-12s %14s %18s\n", "-----------", "-------------",
              "---------------");

  auto tmp = make_temp_dir("k23_table2_");
  const std::string dir = tmp.is_ok() ? tmp.value() : "/tmp";
  (void)write_file(dir + "/a.txt", "alpha\n");
  (void)write_file(dir + "/b.txt", "bravo\n");

  // Each coreutil row runs the full tool path (run_coreutil), including
  // its stdout I/O — the equivalent of the whole post-load lifetime the
  // paper's libLogger observes for GNU coreutils.
  print_row("pwd", record_row([] { (void)run_coreutil("pwd", ""); }));
  print_row("touch", record_row([&] {
              (void)run_coreutil("touch", dir + "/touched.txt");
            }));
  print_row("ls", record_row([&] { (void)run_coreutil("ls", dir); }));
  print_row("cat", record_row([&] {
              (void)run_coreutil("cat", dir + "/a.txt");
            }));
  print_row("clear", record_row([] { (void)run_coreutil("clear", ""); }));

  print_row("sqlite-like", record_row([&] {
              auto db_dir = make_temp_dir("k23_table2_db_");
              if (db_dir.is_ok()) {
                (void)run_db_speedtest(db_dir.value(), 2);
                (void)remove_tree(db_dir.value());
              }
            }));

  print_row("nginx-like",
            record_row(served_workload(
                [](uint16_t port, std::atomic<bool>* stop) {
                  MiniHttpOptions options;
                  options.port = port;
                  options.body_size = 4096;
                  options.stop = stop;
                  (void)run_http_server_inline(options);
                },
                /*http=*/true)));

  print_row("lighttpd-like",
            record_row(served_workload(
                [](uint16_t port, std::atomic<bool>* stop) {
                  MiniHttpOptions options;
                  options.port = port;
                  options.body_size = 4096;
                  options.use_writev = true;
                  options.stop = stop;
                  (void)run_http_server_inline(options);
                },
                /*http=*/true)));

  print_row("redis-like",
            record_row(served_workload(
                [](uint16_t port, std::atomic<bool>* stop) {
                  MiniKvOptions options;
                  options.port = port;
                  options.stop = stop;
                  (void)run_kv_server_inline(options);
                },
                /*http=*/false)));

  if (tmp.is_ok()) (void)remove_tree(dir);
  std::printf(
      "\nExpected shape (paper): coreutils ~7-13 sites; servers/db tens "
      "of sites\n(a small, stable set triggers the vast majority of "
      "system calls).\n");
  return 0;
}

}  // namespace
}  // namespace k23::bench

int main() { return k23::bench::run(); }
