#!/usr/bin/env python3
"""Compare a benchmark JSON report against a committed baseline.

Usage:
    check_bench_regression.py --baseline BENCH_table6.json \
        --current table6.json [--tolerance 0.25]

Both files use the bench/support/json_out.h shape:

    {"benchmark": "...",
     "metrics": [{"name": ..., "value": ..., "higher_is_better": ...}]}

Only metric names present in BOTH files are compared (a new row or variant
is not a regression; a renamed metric silently drops out, which is why
metric names are treated as API). For higher-is-better metrics the check
fails when current < baseline * (1 - tolerance); for lower-is-better when
current > baseline * (1 + tolerance). The default 25% tolerance absorbs
shared-runner noise; real interposition regressions (a variant falling off
its ladder tier) move throughput far more than that.

--require PREFIX (repeatable) closes the silent-skip hole: dropped
metrics normally only warn, so a row that stops being produced at all
(e.g. the accelerated rows failing to measure) would pass the gate.
With --require accel/ the current run must contain at least one metric
named accel/... or the check fails.

--max NAME=VALUE (repeatable) gates a metric against an ABSOLUTE
ceiling instead of the relative baseline. Relative tolerances are
meaningless for near-zero overhead metrics (25% of 3 ns is noise, and a
baseline captured at 1 ns would flag a harmless 2 ns run); the fleet
shmem-consult bound (fleet/consult_overhead_ns <= 20) is a contract
from the design, not a ratio against yesterday. A --max name missing
from the current run fails like --require does.

Exit codes: 0 = ok, 1 = regression, 2 = usage/parse error.
"""

import argparse
import json
import sys


def load_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_bench_regression: cannot read {path}: {exc}",
              file=sys.stderr)
        sys.exit(2)
    metrics = {}
    for metric in doc.get("metrics", []):
        name = metric.get("name")
        value = metric.get("value")
        if not isinstance(name, str) or not isinstance(value, (int, float)):
            print(f"check_bench_regression: malformed metric in {path}: "
                  f"{metric!r}", file=sys.stderr)
            sys.exit(2)
        metrics[name] = (float(value), bool(metric.get("higher_is_better")))
    return doc.get("benchmark", path), metrics


def main():
    parser = argparse.ArgumentParser(
        description="Fail when benchmark metrics regress past a tolerance.")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative tolerance (default 0.25 = 25%%)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="PREFIX",
                        help="fail unless the current run produced at least "
                             "one metric with this name prefix (repeatable)")
    parser.add_argument("--max", action="append", default=[],
                        metavar="NAME=VALUE", dest="max_bounds",
                        help="absolute ceiling for one metric in the current "
                             "run, independent of the baseline (repeatable)")
    args = parser.parse_args()

    bounds = []
    for spec in args.max_bounds:
        name, sep, raw = spec.partition("=")
        try:
            if not sep or not name:
                raise ValueError(spec)
            bounds.append((name, float(raw)))
        except ValueError:
            print(f"check_bench_regression: bad --max {spec!r} "
                  "(want NAME=VALUE)", file=sys.stderr)
            sys.exit(2)

    name, baseline = load_metrics(args.baseline)
    _, current = load_metrics(args.current)

    absent = [prefix for prefix in args.require
              if not any(m.startswith(prefix) for m in current)]
    if absent:
        for prefix in absent:
            print(f"check_bench_regression: required metric prefix "
                  f"{prefix!r} missing from {args.current} "
                  "(row skipped or failed to measure)", file=sys.stderr)
        sys.exit(1)

    absolute_failures = []
    for metric, ceiling in bounds:
        if metric not in current:
            print(f"check_bench_regression: --max metric {metric!r} missing "
                  f"from {args.current}", file=sys.stderr)
            absolute_failures.append(metric)
            continue
        cur_value, _ = current[metric]
        ok = cur_value <= ceiling
        verdict = "ok  " if ok else "FAIL"
        print(f"{verdict} {metric}: current {cur_value:.4g} "
              f"(absolute ceiling {ceiling:.4g})")
        if not ok:
            absolute_failures.append(metric)
    if absolute_failures:
        print(f"\n{len(absolute_failures)} metric(s) over absolute ceiling:",
              file=sys.stderr)
        for metric in absolute_failures:
            print(f"  {metric}", file=sys.stderr)
        sys.exit(1)

    shared = sorted(set(baseline) & set(current))
    missing = sorted(set(baseline) - set(current))
    extra = sorted(set(current) - set(baseline))
    for metric in missing:
        print(f"warning: {metric} in baseline but not in current run "
              "(skipped cell or renamed metric)")
    for metric in extra:
        print(f"note: new metric {metric} (not in baseline, not compared)")
    if not shared:
        print("check_bench_regression: no overlapping metrics to compare",
              file=sys.stderr)
        sys.exit(2)

    failures = []
    for metric in shared:
        base_value, higher_is_better = baseline[metric]
        cur_value, _ = current[metric]
        if higher_is_better:
            floor = base_value * (1.0 - args.tolerance)
            ok = cur_value >= floor
            bound = f">= {floor:.4g}"
        else:
            ceiling = base_value * (1.0 + args.tolerance)
            ok = cur_value <= ceiling
            bound = f"<= {ceiling:.4g}"
        verdict = "ok  " if ok else "FAIL"
        print(f"{verdict} {metric}: baseline {base_value:.4g}, "
              f"current {cur_value:.4g} (need {bound})")
        if not ok:
            failures.append(metric)

    if failures:
        print(f"\n{name}: {len(failures)}/{len(shared)} metric(s) regressed "
              f"past {args.tolerance:.0%}:", file=sys.stderr)
        for metric in failures:
            print(f"  {metric}", file=sys.stderr)
        sys.exit(1)
    print(f"\n{name}: {len(shared)} metric(s) within {args.tolerance:.0%} "
          "of baseline")


if __name__ == "__main__":
    main()
