#!/usr/bin/env bash
# Crash-fault matrix (DESIGN.md §11, EXPERIMENTS.md): for every injected
# crash kind × workload, prove the self-healing layer turns a fault at a
# K23-owned PC into per-site quarantine while the workload still produces
# byte-correct output.
#
#   crash kinds   patch_sigsegv (SIGSEGV, write), hook_fault (SIGSEGV,
#                 read), thunk_sigill (SIGILL) — each fires from the
#                 dispatch probe at a genuine faulting instruction, so the
#                 containment handler sees a real signal frame.
#   workloads     k23_selfcheck kv | http — self-checking drivers that
#                 exit 0 only when an explicit roundtrip is byte-correct
#                 AND the load phase completed without protocol errors.
#
# Per cell the script asserts, from artifacts alone:
#   1. the workload exits 0 with "roundtrip ok" and nonzero requests,
#   2. the black-box names the faulting PC (fault site=...) and the
#      quarantined or demoted site,
#   3. the launcher still interposed a nonzero number of syscalls.
#
# Cells whose kernel features are missing (no SUD, mmap_min_addr > 0) are
# skipped, never failed — same policy as the test suite.
#
# Usage: scripts/crash_fault_matrix.sh [BUILD_DIR] [OUT_DIR]
# Emits OUT_DIR/crash_matrix.json plus per-cell blackbox/stdout/stderr.
set -u

BUILD_DIR=${1:-build}
OUT_DIR=${2:-crash_matrix_artifacts}
K23_RUN="$BUILD_DIR/src/k23/k23_run"
SELFCHECK="$BUILD_DIR/src/workloads/k23_selfcheck"
DURATION=${K23_MATRIX_DURATION:-1}
TIMEOUT=${K23_MATRIX_TIMEOUT:-60}

if [[ ! -x "$K23_RUN" || ! -x "$SELFCHECK" ]]; then
  echo "crash_fault_matrix: missing $K23_RUN or $SELFCHECK (build first)" >&2
  exit 2
fi
mkdir -p "$OUT_DIR"

# Capability probe: one throwaway launch; k23_run prints its caps line
# before doing anything irreversible.
caps=$("$K23_RUN" --stats -- true 2>&1 | grep -m1 'capabilities:' || true)
echo "crash_fault_matrix: $caps"
have_tier=yes
[[ "$caps" == *"+sud"* && "$caps" == *"+mmap_va0"* ]] || have_tier=no

json="$OUT_DIR/crash_matrix.json"
echo '{ "cells": [' > "$json"
first=1
overall=0

emit_cell() { # kind workload status detail requests
  [[ $first -eq 1 ]] || echo ',' >> "$json"
  first=0
  printf '  { "kind": "%s", "workload": "%s", "status": "%s", "detail": "%s", "requests": %s }' \
    "$1" "$2" "$3" "$4" "$5" >> "$json"
}

for wl in kv http; do
  # One offline logging pass per workload: the online cells replay the
  # same site log, so every cell rewrites the same deterministic set.
  log="$OUT_DIR/$wl.sites.log"
  if [[ $have_tier == yes ]]; then
    if ! timeout "$TIMEOUT" "$K23_RUN" --offline --log="$log" -- \
         "$SELFCHECK" "$wl" "$DURATION" \
         > "$OUT_DIR/$wl.offline.out" 2> "$OUT_DIR/$wl.offline.err"; then
      echo "FAIL $wl offline logging pass" >&2
      overall=1
    fi
  fi

  for kind in patch_sigsegv thunk_sigill hook_fault; do
    cell="$kind-$wl"
    if [[ $have_tier == no ]]; then
      echo "skip $cell (kernel lacks sud/mmap_va0)"
      emit_cell "$kind" "$wl" skip "kernel lacks sud/mmap_va0" 0
      continue
    fi
    bb="$OUT_DIR/$cell.bb"
    out="$OUT_DIR/$cell.out"
    err="$OUT_DIR/$cell.err"
    rm -f "$bb"
    K23_FAULTS="$kind:fail:nth=5" K23_FAULTS_SEED=1 \
    K23_BLACKBOX=events K23_BLACKBOX_FILE="$bb" \
      timeout "$TIMEOUT" "$K23_RUN" --stats --log="$log" -- \
      "$SELFCHECK" "$wl" "$DURATION" > "$out" 2> "$err"
    rc=$?

    status=pass detail=ok
    requests=$(sed -n 's/^selfcheck [a-z]*: \([0-9]*\) requests.*/\1/p' "$out")
    requests=${requests:-0}
    if [[ $rc -ne 0 ]]; then
      status=fail detail="exit=$rc"
    elif ! grep -q "roundtrip ok" "$out" || [[ "$requests" -eq 0 ]]; then
      status=fail detail="workload output wrong"
    elif ! grep -q "fault site=" "$bb"; then
      status=fail detail="blackbox missing fault event"
    elif ! grep -Eq "(quarantine|demote) site=" "$bb"; then
      status=fail detail="blackbox missing quarantine/demote event"
    elif ! grep -Eq "k23 stats: [1-9][0-9]* syscalls interposed" "$err"; then
      status=fail detail="no syscalls interposed"
    fi
    [[ $status == pass ]] || overall=1
    echo "$status $cell ($requests requests)"
    emit_cell "$kind" "$wl" "$status" "$detail" "$requests"
  done
done

echo '' >> "$json"
printf '], "overall": "%s" }\n' "$([[ $overall -eq 0 ]] && echo pass || echo fail)" >> "$json"
echo "crash_fault_matrix: wrote $json (overall=$([[ $overall -eq 0 ]] && echo pass || echo fail))"
exit $overall
