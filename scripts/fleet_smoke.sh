#!/usr/bin/env bash
# Fleet smoke (DESIGN.md §14): one k23d supervisor, N interposed mini_kv
# workers, one live config push that every worker must observe.
#
#   scripts/fleet_smoke.sh [build-dir] [workers]
#
# Pass criteria:
#   1. all N workers register with k23d (k23d --stats shows N rows);
#   2. a `k23d --set publish_ms=...` push bumps the generation and every
#      worker's observed generation catches up, without restarting anyone;
#   3. the aggregated fleet counters line renders (stats aggregation
#      replaces post-mortem log merging).
#
# Runners without the launcher's kernel features (SUD, ptrace limits)
# degrade by SKIP (exit 0), matching the test suite's policy: this job
# gates the fleet layer, not kernel availability. Everything else that
# goes wrong is a hard FAIL.
set -u

BUILD=${1:-build}
WORKERS=${2:-64}
SOCK="/tmp/k23d.smoke.$$.sock"
K23D="$BUILD/src/fleet/k23d"
K23_RUN="$BUILD/src/k23/k23_run"
MINI_KV="$BUILD/src/workloads/mini_kv"
LOG=$(mktemp /tmp/k23.fleet_smoke.XXXXXX.log)

WORKER_PIDS=()
K23D_PID=""

cleanup() {
  for pid in "${WORKER_PIDS[@]:-}"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
  done
  # k23_run's tracee (the actual registered worker) is a child of the
  # launcher; sweep by binary path so no server outlives the smoke.
  pkill -f "$MINI_KV" 2>/dev/null
  [ -n "$K23D_PID" ] && kill "$K23D_PID" 2>/dev/null
  rm -f "$SOCK" "$LOG"
}
trap cleanup EXIT

skip() { echo "fleet-smoke: SKIP: $*"; exit 0; }
fail() {
  echo "fleet-smoke: FAIL: $*" >&2
  echo "--- k23d log ---" >&2
  cat "$LOG" >&2 || true
  "$K23D" --sock="$SOCK" --stats >&2 2>/dev/null || true
  exit 1
}

for bin in "$K23D" "$K23_RUN" "$MINI_KV"; do
  [ -x "$bin" ] || fail "missing binary $bin (build first)"
done

# Kernel-capability probe: if the launcher cannot bring up a trivial
# interposed process on this runner, the fleet layer has nothing to
# supervise here — skip, don't fail.
if ! "$K23_RUN" -- /bin/true >/dev/null 2>&1; then
  skip "k23_run cannot launch interposed processes on this runner"
fi

"$K23D" --sock="$SOCK" >"$LOG" 2>&1 &
K23D_PID=$!
up=""
for _ in $(seq 1 50); do
  if "$K23D" --sock="$SOCK" --ping >/dev/null 2>&1; then up=1; break; fi
  sleep 0.1
done
[ -n "$up" ] || fail "k23d did not answer ping"

echo "fleet-smoke: launching $WORKERS interposed mini_kv workers"
for _ in $(seq 1 "$WORKERS"); do
  K23_FLEET=on K23_FLEET_SOCK="$SOCK" K23_FLEET_TENANT=smoke \
    "$K23_RUN" -- "$MINI_KV" 0 1 >/dev/null 2>&1 &
  WORKER_PIDS+=($!)
done

registered=0
for _ in $(seq 1 120); do
  registered=$("$K23D" --sock="$SOCK" --stats 2>/dev/null \
                 | grep -c '^worker ' || true)
  [ "$registered" -ge "$WORKERS" ] && break
  sleep 1
done
[ "$registered" -ge "$WORKERS" ] \
  || fail "only $registered/$WORKERS workers registered"
echo "fleet-smoke: all $WORKERS workers registered"

# Live push: every already-running worker must observe the new
# generation without being restarted.
set_out=$("$K23D" --sock="$SOCK" --set publish_ms=100) \
  || fail "config push rejected: $set_out"
gen=${set_out#generation=}
case "$gen" in
  ''|*[!0-9]*) fail "unparseable --set reply: $set_out" ;;
esac
echo "fleet-smoke: pushed publish_ms=100 -> generation $gen"

caught_up=0
for _ in $(seq 1 60); do
  caught_up=$("$K23D" --sock="$SOCK" --stats 2>/dev/null \
                | grep -c "^worker .* gen=$gen " || true)
  [ "$caught_up" -ge "$WORKERS" ] && break
  sleep 1
done
[ "$caught_up" -ge "$WORKERS" ] \
  || fail "only $caught_up/$WORKERS workers observed generation $gen"
echo "fleet-smoke: all $WORKERS workers observed generation $gen"

# Continuous aggregation: the fleet-wide counter line must render.
"$K23D" --sock="$SOCK" --stats | grep -q '^fleet: syscalls=' \
  || fail "aggregated fleet counters missing from --stats"

"$K23D" --sock="$SOCK" --shutdown >/dev/null 2>&1
echo "fleet-smoke: PASS ($WORKERS workers, live push observed fleet-wide)"
exit 0
