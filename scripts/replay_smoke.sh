#!/usr/bin/env bash
# Replay smoke (DESIGN.md §15): record one interposed mini_kv run under
# client load, then replay the trace twice and demand the two replays
# agree with each other — the scenario engine's determinism contract,
# end to end through the real launcher.
#
#   scripts/replay_smoke.sh [build-dir] [requests]
#
# Pass criteria:
#   1. `k23_run record` captures the run (trace written, server exits 0);
#   2. both `k23_run replay` runs finish with replay,diverged,0 and a
#      non-zero replay,replayed count;
#   3. the per-syscall stats for the recorded families are byte-identical
#      across the two replays (epoll_wait wake counts are excluded: 50ms
#      timeout expiries depend on wall clock and are deliberately outside
#      the recorded nondeterminism surface — see trace_format.h);
#   4. bench_replay's rate=10 soak gate holds: virtual-clock replay
#      finishes in <= 1/5 of the recorded wall-clock.
#
# Determinism notes baked into the harness below:
#   - The client waits for each reply before sending the next command, so
#     the server sees exactly one command per read and the trace's read
#     segmentation is reproducible.
#   - The connect attempt doubles as the readiness probe: a refused
#     connect never reaches the server, so no throwaway probe connections
#     leak into the trace.
#   - The client holds its connection open until the server exits (the
#     server stops itself via mini_kv's max_requests bound), so the
#     server never sees a close racing its shutdown and the trace length
#     is not timing-dependent.
#
# Runners without the launcher's kernel features degrade by SKIP (exit
# 0), matching the test suite's policy. Everything else is a hard FAIL.
set -u

BUILD=${1:-build}
REQUESTS=${2:-300}
K23_RUN="$BUILD/src/k23/k23_run"
MINI_KV="$BUILD/src/workloads/mini_kv"
BENCH_REPLAY="$BUILD/bench/bench_replay"
WORK=$(mktemp -d /tmp/k23.replay_smoke.XXXXXX)
PORT=$((20000 + $$ % 20000))
TRACE="$WORK/kv.trace"

SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  pkill -f "$MINI_KV" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

skip() { echo "replay-smoke: SKIP: $*"; exit 0; }
fail() {
  echo "replay-smoke: FAIL: $*" >&2
  for log in "$WORK"/*.log; do
    echo "--- $log ---" >&2
    cat "$log" >&2 || true
  done
  exit 1
}

for bin in "$K23_RUN" "$MINI_KV" "$BENCH_REPLAY"; do
  [ -x "$bin" ] || fail "missing binary $bin (build first)"
done

if ! "$K23_RUN" -- /bin/true >/dev/null 2>&1; then
  skip "k23_run cannot launch interposed processes on this runner"
fi

# Drives REQUESTS commands over one connection, one reply awaited per
# command, then holds the connection until the server exits on its own.
drive_client() {
  local connected=""
  for _ in $(seq 1 100); do
    # `command exec`: a refused connect must not abort the shell (exec is
    # a special builtin; its redirection failures are fatal otherwise).
    if { command exec 3<>"/dev/tcp/127.0.0.1/$PORT"; } 2>/dev/null; then
      connected=1
      break
    fi
    sleep 0.1
  done
  [ -n "$connected" ] || return 1
  local i reply
  for i in $(seq 1 "$REQUESTS"); do
    case $((i % 3)) in
      1) printf 'SET smoke:%d v%d\r\n' "$i" "$i" >&3
         read -r -t 10 reply <&3 || return 1 ;;
      2) printf 'GET smoke:%d\r\n' "$((i - 1))" >&3
         read -r -t 10 reply <&3 || return 1   # $<len>
         read -r -t 10 reply <&3 || return 1 ;;  # value
      0) printf 'PING\r\n' >&3
         read -r -t 10 reply <&3 || return 1 ;;
    esac
  done
  wait "$SERVER_PID"
  local rc=$?
  exec 3>&- 3<&-
  return "$rc"
}

# One server run under the launcher in $1 mode, client load, clean exit.
run_server() {
  local mode=$1 log=$2
  shift 2
  env "$@" "$K23_RUN" "$mode" --trace="$TRACE" --stats -- \
    "$MINI_KV" "$PORT" 1 "$REQUESTS" >"$log" 2>&1 &
  SERVER_PID=$!
  drive_client
  local rc=$?
  SERVER_PID=""
  return "$rc"
}

echo "replay-smoke: recording $REQUESTS-request mini_kv run"
run_server record "$WORK/record.log" \
  || fail "record run broke (server or client)"
grep -q 'recorded' "$WORK/record.log" \
  || fail "launcher did not report a recorded trace"
[ -s "$TRACE" ] || fail "trace file is empty"

for n in 1 2; do
  mkdir "$WORK/stats$n" || fail "mkdir stats$n"
  echo "replay-smoke: replay #$n"
  run_server replay "$WORK/replay$n.log" K23_STATS_DIR="$WORK/stats$n" \
    || fail "replay #$n broke (server or client)"
  dump=$(ls "$WORK/stats$n"/*.k23stats 2>/dev/null | head -n1)
  [ -n "$dump" ] || fail "replay #$n wrote no stats dump"
  grep -q '^replay,diverged,0$' "$dump" \
    || fail "replay #$n diverged: $(grep '^replay,' "$dump" | tr '\n' ' ')"
  grep '^replay,replayed,' "$dump" | grep -qv ',0$' \
    || fail "replay #$n served nothing from the trace"
done

# Deterministic subset: replay counters plus per-syscall rows for the
# recorded families (read, accept/accept4, recvfrom, getrandom, and the
# time family). epoll_wait wake counts ride on wall-clock timeouts and
# are excluded by design.
filter_dump() {
  grep -E '^(replay,|nr,(0|35|43|45|96|201|228|230|288|318),)' "$1" | sort
}
filter_dump "$WORK"/stats1/*.k23stats >"$WORK/replay1.rows"
filter_dump "$WORK"/stats2/*.k23stats >"$WORK/replay2.rows"
if ! diff -u "$WORK/replay1.rows" "$WORK/replay2.rows" >&2; then
  fail "the two replays disagree on recorded-family per-syscall stats"
fi
rows=$(wc -l <"$WORK/replay1.rows")
echo "replay-smoke: two replays byte-identical across $rows stat rows"

echo "replay-smoke: bench_replay rate=10 soak gate"
"$BENCH_REPLAY" --iters=20000 --json="$WORK/bench.json" \
  >"$WORK/bench.log" 2>&1 \
  || fail "bench_replay gate failed (rate=10 soak must be >= 5x)"
grep 'soak:' "$WORK/bench.log" || true

echo "replay-smoke: PASS (1 recording, 2 identical replays, soak gate held)"
exit 0
